// Group-commit tests: the batched-fsync pipeline must keep the exact
// durability contract of per-record mode — acked means fsynced, crash
// recovery yields an acked prefix — while issuing fewer fsyncs. The
// crash matrix from crash_test.go is rerun against a group-commit
// script, and the pipeline-specific edges (leader error propagation,
// rotation drain, torn-write repair, NoSync bypass) get direct tests.
package wal_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"overprov/internal/estimate"
	"overprov/internal/faultinject"
	"overprov/internal/wal"
)

// walScriptGroup is walScript with the group-commit pipeline enabled
// and batch appends in the mix: a fixed append/batch/rotate workload
// whose filesystem-operation count is deterministic, so the crash
// matrix can halt at every single operation. Calls are sequential, so
// every RecordOutcome(s) call is its own window leader and the acked
// order is well defined.
func walScriptGroup(dir string, sched *faultinject.Schedule) (acked []int, err error) {
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys, GroupCommit: true})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	var trained []int
	if _, err := l.Recover(
		func(r io.Reader) error { return json.NewDecoder(r).Decode(&trained) },
		func(r wal.Record) error { trained = append(trained, int(r.JobID)); return nil },
	); err != nil {
		return nil, err
	}
	save := func(w io.Writer) error { return json.NewEncoder(w).Encode(trained) }
	var rotateErrs []error // injected faults are expected; none silently dropped
	next := 0
	appendOne := func() {
		id := next
		next++
		if err := l.RecordOutcome(outcomeID(id)); err == nil {
			acked = append(acked, id)
			trained = append(trained, id)
		}
	}
	// A batch is one commit ticket: all of it is acked, or none of it.
	appendBatch := func(n int) {
		ids := make([]int, 0, n)
		os := make([]estimate.Outcome, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, next)
			os = append(os, outcomeID(next))
			next++
		}
		if err := l.RecordOutcomes(os); err == nil {
			acked = append(acked, ids...)
			trained = append(trained, ids...)
		}
	}
	appendOne()
	appendBatch(3)
	if err := l.Rotate(save); err != nil {
		rotateErrs = append(rotateErrs, err)
	}
	appendBatch(2)
	appendOne()
	if err := l.Rotate(save); err != nil {
		rotateErrs = append(rotateErrs, err)
	}
	appendBatch(2)
	return acked, nil
}

// TestGroupCrashMatrix: SIGKILL at every filesystem operation of the
// group-commit script; recovery must keep every acked record, in order.
func TestGroupCrashMatrix(t *testing.T) {
	probe := faultinject.NewSchedule()
	if _, err := walScriptGroup(t.TempDir(), probe); err != nil {
		t.Fatalf("probe pass: %v", err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("probe counted only %d fs ops — script too small for a matrix", total)
	}
	t.Logf("group-commit crash matrix over %d filesystem operations", total)

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("halt=%d", k), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			sched := faultinject.NewSchedule(faultinject.HaltAt(k))
			acked, err := walScriptGroup(dir, sched)
			if err != nil && !sched.Halted() {
				t.Fatalf("script failed without a halt: %v", err)
			}
			recovered, _ := recoverAll(t, dir)
			checkNoAckedLoss(t, acked, recovered)
			checkDumpEquivalence(t, dir, recovered)
		})
	}
}

// TestGroupCrashMatrixTearing: the same matrix with the kill tearing
// the in-flight write — the torn bytes may sit inside a multi-record
// group frame sequence, and recovery must still cut to an acked prefix.
func TestGroupCrashMatrixTearing(t *testing.T) {
	probe := faultinject.NewSchedule()
	if _, err := walScriptGroup(t.TempDir(), probe); err != nil {
		t.Fatalf("probe pass: %v", err)
	}
	total := probe.Ops()
	for k := 1; k <= total; k++ {
		for _, partial := range []int{1, 9} { // mid-header and mid-payload tears
			k, partial := k, partial
			t.Run(fmt.Sprintf("halt=%d,partial=%d", k, partial), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				sched := faultinject.NewSchedule(faultinject.HaltAtTearing(k, partial))
				acked, err := walScriptGroup(dir, sched)
				if err != nil && !sched.Halted() {
					t.Fatalf("script failed without a halt: %v", err)
				}
				recovered, _ := recoverAll(t, dir)
				checkNoAckedLoss(t, acked, recovered)
				checkDumpEquivalence(t, dir, recovered)
			})
		}
	}
}

// TestGroupConcurrentBatching: concurrent appenders against a slow
// fsync must share windows — every acked record recovers, and the
// pipeline issues strictly fewer fsyncs than records. While one
// leader's fsync sleeps, every arriving caller joins the next window;
// per-record mode would pay the injected latency once per record.
func TestGroupConcurrentBatching(t *testing.T) {
	dir := t.TempDir()
	sched := faultinject.NewSchedule(faultinject.SlowAll(faultinject.OpSync, 2*time.Millisecond))
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 20
	var mu sync.Mutex
	var acked []int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := c*perClient + i
				if err := l.RecordOutcome(outcomeID(id)); err != nil {
					t.Errorf("append %d: %v", id, err)
					return
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	records, syncs := l.SyncStats()
	if records != clients*perClient {
		t.Fatalf("records = %d, want %d", records, clients*perClient)
	}
	if syncs >= records {
		t.Errorf("syncs = %d, records = %d: no batching happened", syncs, records)
	}
	t.Logf("%d records over %d fsyncs (%.2f records/fsync)",
		records, syncs, float64(records)/float64(syncs))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	seen := map[int]int{}
	for _, id := range recovered {
		seen[id]++
	}
	for _, id := range acked {
		if seen[id] != 1 {
			t.Fatalf("acked id %d appears %d times in recovery", id, seen[id])
		}
	}
	if len(recovered) != len(acked) {
		t.Fatalf("recovered %d records, want exactly the %d acked", len(recovered), len(acked))
	}
}

// TestGroupLeaderErrorPropagation: when the covering fsync fails, every
// caller in the window must get the error and none of their records may
// survive recovery — an acked-false record showing up after a crash is
// as wrong as a lost acked one (the estimator would train on feedback
// the server never counted). The log must also keep accepting appends
// afterwards, because the failed tail was truncated back to the
// known-good size.
func TestGroupLeaderErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("sector failure")
	// OpSync #1 is the journal header sync in Open (SyncDir is a
	// different op); #2 is the first commit's covering fsync.
	sched := faultinject.NewSchedule(faultinject.FailNth(faultinject.OpSync, 2, boom))
	fsys := faultinject.NewFS(nil, sched)
	const k = 4
	l, err := wal.Open(dir, wal.Options{
		FS: fsys, GroupCommit: true,
		GroupMax: k, GroupWindow: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	// k concurrent callers fill exactly one window: the first creates it
	// and lingers on the 2s window timer, the k-th fills it and wakes the
	// leader, whose one fsync — covering all k — fails.
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.RecordOutcome(outcomeID(i))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: error = %v, want the leader's sync failure", i, err)
		}
	}
	if records, _ := l.SyncStats(); records != 0 {
		t.Errorf("durable-record count = %d after a failed window, want 0", records)
	}
	// The failed window's frames were truncated away; the pipeline keeps
	// accepting appends on the same generation.
	if err := l.RecordOutcome(outcomeID(100)); err != nil {
		t.Fatalf("append after failed window: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	if len(recovered) != 1 || recovered[0] != 100 {
		t.Fatalf("recovered %v, want exactly [100]: the failed window must leave no records", recovered)
	}
}

// TestGroupTornWriteRepair: a partial journal write followed by more
// appends. Without the known-good-size repair, the torn frame's bytes
// would sit between acked records and recovery would cut everything
// after them — acked records lost. With it, the tail is truncated back
// and later acked records survive.
func TestGroupTornWriteRepair(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("partial write")
	// OpWrite #1 on the journal is the header; #2 is the first commit.
	// Partial: 9 leaves 9 garbage bytes mid-frame.
	sched := faultinject.NewSchedule(
		faultinject.Rule{Op: faultinject.OpWrite, Path: "journal-", Nth: 2,
			Fault: faultinject.Fault{Err: boom, Partial: 9}},
	)
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeID(0)); !errors.Is(err, boom) {
		t.Fatalf("torn append: error = %v, want %v", err, boom)
	}
	var acked []int
	for id := 1; id <= 2; id++ {
		if err := l.RecordOutcome(outcomeID(id)); err != nil {
			t.Fatalf("append %d after repaired tear: %v", id, err)
		}
		acked = append(acked, id)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, stats := recoverAll(t, dir)
	checkNoAckedLoss(t, acked, recovered)
	if len(recovered) != len(acked) {
		t.Fatalf("recovered %v, want exactly %v", recovered, acked)
	}
	if stats.TornBytes != 0 {
		t.Errorf("recovery found %d torn bytes — the repair should have cut them at append time", stats.TornBytes)
	}
}

// TestGroupTornTailSticky: when even the post-failure truncate fails,
// the journal tail is garbage that cannot be cut. The log must refuse
// further appends on that generation — acking records behind a torn
// tail would lose them at recovery — and resume after a rotation
// starts a clean one.
func TestGroupTornTailSticky(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("partial write")
	sched := faultinject.NewSchedule(
		faultinject.Rule{Op: faultinject.OpWrite, Path: "journal-", Nth: 2,
			Fault: faultinject.Fault{Err: boom, Partial: 9}},
		faultinject.Rule{Op: faultinject.OpTruncate, Path: "journal-", Nth: 1,
			Fault: faultinject.Fault{Err: errors.New("truncate failure")}},
	)
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeID(0)); !errors.Is(err, boom) {
		t.Fatalf("torn append: error = %v, want %v", err, boom)
	}
	err = l.RecordOutcome(outcomeID(1))
	if err == nil {
		t.Fatal("append on a torn tail must fail")
	}
	if !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn-tail append error = %v, want it to name the torn tail", err)
	}
	// Rotation abandons the torn generation; appends resume.
	if err := l.Rotate(func(w io.Writer) error {
		return json.NewEncoder(w).Encode([]int{})
	}); err != nil {
		t.Fatalf("rotation off a torn generation: %v", err)
	}
	if err := l.RecordOutcome(outcomeID(2)); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	if len(recovered) != 1 || recovered[0] != 2 {
		t.Fatalf("recovered %v, want exactly [2]", recovered)
	}
}

// TestGroupRotateFlushesPendingWindow: Rotate must drain a window whose
// leader is lingering on the commit-window timer — through the ticket
// mechanism, not by waiting the window out. The drained record lands in
// the old generation, which Rotate deletes once the snapshot is
// installed — so the snapshot callback must already cover it, exactly
// the write-ahead-then-train coordination server.Quiesce provides; here
// the callback waits for the ack itself.
func TestGroupRotateFlushesPendingWindow(t *testing.T) {
	dir := t.TempDir()
	const window = 10 * time.Second // far beyond the drain's latency
	l, err := wal.Open(dir, wal.Options{GroupCommit: true, GroupWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	ackErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		ackErr <- l.RecordOutcome(outcomeID(7))
	}()
	// Let the appender create its window and start the leader lingering
	// on the 10s timer; the drain inside Rotate must wake it at once.
	<-started
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if err := l.Rotate(func(w io.Writer) error {
		// Rotate has drained the pipeline by the time it snapshots, so
		// the append's ticket is resolved and this receive is prompt.
		trained := []int{}
		if err := <-ackErr; err == nil {
			trained = append(trained, 7)
		}
		return json.NewEncoder(w).Encode(trained)
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > window/2 {
		t.Fatalf("rotation took %v — it waited out the commit window instead of draining", elapsed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	if len(recovered) != 1 || recovered[0] != 7 {
		t.Fatalf("recovered %v, want [7]", recovered)
	}
}

// TestGroupCloseDrains: Close racing live appenders must neither hang
// nor lose an acked record; appends refused by the closing log must
// not surface in recovery as phantom feedback.
func TestGroupCloseDrains(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 50
	var mu sync.Mutex
	var acked []int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := c*perClient + i
				if err := l.RecordOutcome(outcomeID(id)); err != nil {
					return // the close won the race; id was not acked
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let appends get in flight
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	recovered, _ := recoverAll(t, dir)
	seen := map[int]bool{}
	for _, id := range recovered {
		seen[id] = true
	}
	for _, id := range acked {
		if !seen[id] {
			t.Fatalf("acked id %d lost: recovered %d of %d acked", id, len(recovered), len(acked))
		}
	}
}

// TestGroupNoSyncBypass: NoSync disables the pipeline (there is no
// fsync to amortize) — appends must work and issue zero fsyncs.
func TestGroupNoSyncBypass(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{NoSync: true, GroupCommit: true, GroupWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.RecordOutcome(outcomeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	records, syncs := l.SyncStats()
	if records != 5 || syncs != 0 {
		t.Fatalf("SyncStats = (%d, %d), want (5, 0) under NoSync", records, syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupSingleCaller: with no contention and no commit window a lone
// caller commits immediately — one fsync per record, no added latency
// machinery — and an idle recovered log has issued no fsyncs at all
// (the window always carries its creator's record, so no timer can
// fire over an empty buffer).
func TestGroupSingleCaller(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if records, syncs := l.SyncStats(); records != 0 || syncs != 0 {
		t.Fatalf("idle SyncStats = (%d, %d), want (0, 0)", records, syncs)
	}
	for i := 0; i < 3; i++ {
		if err := l.RecordOutcome(outcomeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	records, syncs := l.SyncStats()
	if records != 3 || syncs != 3 {
		t.Fatalf("SyncStats = (%d, %d), want (3, 3): a lone caller pays exactly one fsync per record", records, syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	checkNoAckedLoss(t, []int{0, 1, 2}, recovered)
}

// TestGroupBatchSingleSync: one RecordOutcomes batch is one commit
// ticket — a single covering fsync regardless of batch size, with
// per-record framing so recovery replays each record individually.
func TestGroupBatchSingleSync(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	const n = 100
	batch := make([]estimate.Outcome, 0, n)
	want := make([]int, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, outcomeID(i))
		want = append(want, i)
	}
	if err := l.RecordOutcomes(batch); err != nil {
		t.Fatal(err)
	}
	records, syncs := l.SyncStats()
	if records != n || syncs != 1 {
		t.Fatalf("SyncStats = (%d, %d), want (%d, 1): the batch rides one fsync", records, syncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	checkNoAckedLoss(t, want, recovered)
	if len(recovered) != n {
		t.Fatalf("recovered %d records, want %d", len(recovered), n)
	}
}

// TestGroupRecordOutcomesPerRecordMode: without GroupCommit the batch
// API degrades to the strict per-record baseline — one fsync per
// record — so benchmarks comparing the modes measure exactly the
// fsync amortization and nothing else.
func TestGroupRecordOutcomesPerRecordMode(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	batch := []estimate.Outcome{outcomeID(0), outcomeID(1), outcomeID(2)}
	if err := l.RecordOutcomes(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcomes(nil); err != nil {
		t.Fatal(err)
	}
	records, syncs := l.SyncStats()
	if records != 3 || syncs != 3 {
		t.Fatalf("SyncStats = (%d, %d), want (3, 3) in per-record mode", records, syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _ := recoverAll(t, dir)
	checkNoAckedLoss(t, []int{0, 1, 2}, recovered)
}

// TestGroupModeEquivalence: the same outcome stream journaled through
// group mode and per-record mode must produce byte-identical replay
// streams — group commit changes fsync scheduling, never content.
func TestGroupModeEquivalence(t *testing.T) {
	dirGroup, dirRecord := t.TempDir(), t.TempDir()
	run := func(dir string, opts wal.Options) {
		l, err := wal.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := l.RecordOutcome(outcomeID(i)); err != nil {
				t.Fatal(err)
			}
		}
		var batch []estimate.Outcome
		for i := 10; i < 20; i++ {
			batch = append(batch, outcomeID(i))
		}
		if err := l.RecordOutcomes(batch); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run(dirGroup, wal.Options{GroupCommit: true})
	run(dirRecord, wal.Options{})
	_, recsG, err := wal.Dump(dirGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, recsR, err := wal.Dump(dirRecord, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsG) != len(recsR) {
		t.Fatalf("group mode journaled %d records, per-record mode %d", len(recsG), len(recsR))
	}
	for i := range recsG {
		if recsG[i] != recsR[i] {
			t.Fatalf("record %d differs: group %+v, per-record %+v", i, recsG[i], recsR[i])
		}
	}
}

// TestGroupLifecycleErrors: the group path's lock-free pre-checks must
// report the same errors as per-record mode — append before Recover
// and append after Close are refused, never silently dropped.
func TestGroupLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeID(0)); err == nil {
		t.Fatal("group append before Recover must fail")
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeID(0)); err == nil {
		t.Fatal("group append after Close must fail")
	}
	if err := l.RecordOutcomes([]estimate.Outcome{outcomeID(1)}); err == nil {
		t.Fatal("group batch append after Close must fail")
	}
}
