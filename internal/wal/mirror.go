package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"overprov/internal/wire"
)

// Mirror is the follower side of WAL shipping: it applies
// wire.WALState chunks to a local directory so that the directory is,
// at every instant, a valid generation-numbered WAL layout holding an
// acked prefix of the leader's feedback stream. Promotion is therefore
// the ordinary recovery path — Open + Recover on the mirror directory
// — and inherits its torn-tail repair: a follower that crashed
// mid-append, or a hand-torn chunk, truncates to the last clean record
// exactly as the leader's own crash recovery would.
//
// The Mirror is a pure state machine: NextRequest says what to ask the
// leader for, Apply folds one answer in. The network loop that carries
// the frames lives in internal/repl.
type Mirror struct {
	fs  FS
	dir string

	// mu guards every position field and the open file handles. It is
	// a leaf: nothing is acquired under it (file I/O happens while it
	// is held, but never another lock), and the replication loop is
	// the only steady-state caller.
	//overprov:lock rank=65
	mu      sync.Mutex
	gen     uint64 // journal generation being mirrored (0 = needs reset)
	off     uint64 // bytes of that journal applied, header included
	journal File   // open append handle for journal gen, nil until first chunk

	// Snapshot assembly during a reset. While snapGen != 0 the mirror
	// polls for snapshot chunks into a temp file; the old state stays
	// promotable until the new snapshot installs atomically.
	snapGen   uint64
	snapOff   uint64
	snapTmp   File
	resumeGen uint64 // journal generation to follow once the snapshot installs

	// Last observed leader positions, for lag accounting.
	leaderSeq  uint64
	leaderSize uint64

	closed bool
}

// OpenMirror binds a mirror to dir, creating it if needed. A non-empty
// directory resumes where the last follower run stopped: it is opened
// through the ordinary WAL recovery path (repairing any torn tail) and
// mirroring continues from the repaired position, so a follower
// restart re-fetches only what was never applied cleanly. fsys nil
// selects the real filesystem.
func OpenMirror(dir string, fsys FS) (*Mirror, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mirror: %w", err)
	}
	m := &Mirror{fs: fsys, dir: dir}
	sc, err := scanDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: mirror: %w", err)
	}
	if len(sc.journals) == 0 && sc.snapSeq == 0 {
		return m, nil // fresh mirror: first poll draws a reset
	}
	// Reuse Open's repair to normalize the directory and learn the
	// resume position, then release the Log — the mirror appends raw
	// bytes itself.
	l, err := Open(dir, Options{FS: fsys})
	if err != nil {
		// The directory is beyond local repair; start over from the
		// leader rather than fail the follower.
		if err := removeWALFiles(fsys, dir, ""); err != nil {
			return nil, fmt.Errorf("wal: mirror: %w", err)
		}
		return m, nil
	}
	m.gen = l.seq
	m.off = uint64(l.size)
	if err := l.Close(); err != nil {
		return nil, fmt.Errorf("wal: mirror: %w", err)
	}
	return m, nil
}

// Dir returns the mirror directory (the argument to Open at
// promotion).
func (m *Mirror) Dir() string { return m.dir }

// NextRequest returns the fetch that would extend the mirror.
func (m *Mirror) NextRequest() wire.WALFetch {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapGen != 0 {
		return wire.WALFetch{Kind: wire.WALKindSnapshot, Gen: m.snapGen, Off: m.snapOff}
	}
	return wire.WALFetch{Kind: wire.WALKindJournal, Gen: m.gen, Off: m.off}
}

// Apply folds one leader answer into the mirror. progress reports
// whether the reply advanced anything — the replication loop polls
// again immediately after progress and idles otherwise.
func (m *Mirror) Apply(s wire.WALState) (progress bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, fmt.Errorf("wal: mirror closed")
	}
	if s.Seq > 0 {
		m.leaderSeq = s.Seq
	}
	if s.Flags&wire.WALFlagReset != 0 {
		return true, m.resetLocked(s)
	}
	switch s.Kind {
	case wire.WALKindSnapshot:
		return m.applySnapshotLocked(s)
	case wire.WALKindJournal:
		return m.applyJournalLocked(s)
	}
	return false, fmt.Errorf("wal: mirror: unknown chunk kind %d", s.Kind)
}

// resetLocked restarts mirroring at the position the leader directed:
// fetch snapshot SnapGen first when one exists, else wipe and follow
// journal Gen from its first byte.
func (m *Mirror) resetLocked(s wire.WALState) error {
	m.abortSnapshotLocked()
	m.closeJournalLocked(false)
	m.gen, m.off = 0, 0
	if s.SnapGen != 0 {
		name := snapshotName(s.SnapGen) + ".tmp"
		f, err := m.fs.OpenFile(filepath.Join(m.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("wal: mirror: %w", err)
		}
		m.snapGen, m.snapOff, m.snapTmp, m.resumeGen = s.SnapGen, 0, f, s.Gen
		return nil
	}
	// No snapshot upstream: any local state is divergent history.
	if err := removeWALFiles(m.fs, m.dir, ""); err != nil {
		return fmt.Errorf("wal: mirror: %w", err)
	}
	m.gen = s.Gen
	return nil
}

// applySnapshotLocked appends one snapshot chunk; when the file is
// complete it installs atomically (fsync, rename, dir fsync) and
// journal mirroring restarts at the generation the snapshot covers.
func (m *Mirror) applySnapshotLocked(s wire.WALState) (bool, error) {
	if m.snapGen == 0 || s.Gen != m.snapGen {
		// The leader rotated mid-fetch; restart the reset dance.
		m.abortSnapshotLocked()
		m.gen, m.off = 0, 0
		return true, nil
	}
	if s.Off != m.snapOff || s.Off+uint64(len(s.Data)) > s.Size {
		m.abortSnapshotLocked()
		m.gen, m.off = 0, 0
		return true, fmt.Errorf("wal: mirror: snapshot chunk at %d, want %d", s.Off, m.snapOff)
	}
	if len(s.Data) > 0 {
		if _, err := m.snapTmp.Write(s.Data); err != nil {
			m.abortSnapshotLocked()
			m.gen, m.off = 0, 0
			return true, fmt.Errorf("wal: mirror: %w", err)
		}
		m.snapOff += uint64(len(s.Data))
	}
	if m.snapOff < s.Size {
		return len(s.Data) > 0, nil
	}
	// Complete: install. Old generations are removed first (they are
	// covered by the incoming snapshot), then the rename and directory
	// sync make the new state the durable one.
	tmpName := snapshotName(m.snapGen) + ".tmp"
	err := m.snapTmp.Sync()
	if cerr := m.snapTmp.Close(); err == nil {
		err = cerr
	}
	m.snapTmp = nil
	if err == nil {
		err = removeWALFiles(m.fs, m.dir, tmpName)
	}
	if err == nil {
		err = m.fs.Rename(filepath.Join(m.dir, tmpName), filepath.Join(m.dir, snapshotName(m.snapGen)))
	}
	if err == nil {
		err = m.fs.SyncDir(m.dir)
	}
	if err != nil {
		m.abortSnapshotLocked()
		m.gen, m.off = 0, 0
		return true, fmt.Errorf("wal: mirror: installing snapshot %d: %w", s.Gen, err)
	}
	m.gen, m.off = m.resumeGen, 0
	m.snapGen, m.snapOff, m.resumeGen = 0, 0, 0
	return true, nil
}

// applyJournalLocked appends one journal chunk at the mirrored offset.
func (m *Mirror) applyJournalLocked(s wire.WALState) (bool, error) {
	if s.Gen != m.gen || s.Off != m.off {
		// A stale reply (reconnect, duplicated frame). The position is
		// authoritative on our side; just re-poll.
		return false, nil
	}
	m.leaderSize = s.Size
	if len(s.Data) > 0 {
		if m.journal == nil {
			f, err := m.fs.OpenFile(filepath.Join(m.dir, journalName(m.gen)),
				os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
			if err != nil {
				return false, fmt.Errorf("wal: mirror: %w", err)
			}
			m.journal = f
		}
		if _, err := m.journal.Write(s.Data); err != nil {
			return false, fmt.Errorf("wal: mirror: %w", err)
		}
		m.off += uint64(len(s.Data))
	}
	if s.Flags&wire.WALFlagGenDone != 0 && m.off == s.Size {
		// This generation is complete upstream; advance. The finished
		// file is synced so the prefix below the new generation can
		// never be lost to a follower crash.
		m.closeJournalLocked(true)
		m.gen++
		m.off = 0
		return true, nil
	}
	return len(s.Data) > 0, nil
}

// abortSnapshotLocked discards an in-flight snapshot assembly.
func (m *Mirror) abortSnapshotLocked() {
	if m.snapTmp != nil {
		_ = m.snapTmp.Close()
		_ = m.fs.Remove(filepath.Join(m.dir, snapshotName(m.snapGen)+".tmp"))
	}
	m.snapGen, m.snapOff, m.snapTmp, m.resumeGen = 0, 0, nil, 0
}

// closeJournalLocked closes the open journal handle, optionally
// syncing it first.
func (m *Mirror) closeJournalLocked(sync bool) {
	if m.journal == nil {
		return
	}
	if sync {
		_ = m.journal.Sync()
	}
	_ = m.journal.Close()
	m.journal = nil
}

// Lag reports how far the mirror trails the leader: whole generations
// behind, and — when on the leader's current generation — bytes of it
// still unfetched. bytes is -1 while generations are outstanding
// (their sizes are unknown until fetched). (0, 0) means caught up as
// of the last applied reply.
func (m *Mirror) Lag() (gens uint64, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.leaderSeq == 0 {
		return 0, -1 // nothing observed yet
	}
	if m.snapGen != 0 || m.gen == 0 {
		return m.leaderSeq, -1 // resyncing from scratch
	}
	if m.gen < m.leaderSeq {
		return m.leaderSeq - m.gen, -1
	}
	if m.off > m.leaderSize {
		return 0, 0 // leader position observation is stale
	}
	return 0, int64(m.leaderSize - m.off)
}

// Sync fsyncs the mirrored journal so everything applied so far
// survives a follower crash.
func (m *Mirror) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	return m.journal.Sync()
}

// Close syncs and releases the mirror. The directory remains a valid
// WAL layout; promote it with Open + Recover, or hand it to a fresh
// OpenMirror to resume following.
func (m *Mirror) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	m.abortSnapshotLocked()
	var err error
	if m.journal != nil {
		err = m.journal.Sync()
		if cerr := m.journal.Close(); err == nil {
			err = cerr
		}
		m.journal = nil
	}
	return err
}
