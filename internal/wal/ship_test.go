package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"overprov/internal/wire"
)

// syncMirror runs the fetch/apply loop in-process (no network) until
// the mirror reports caught up.
func syncMirror(t *testing.T, l *Log, m *Mirror) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		rep, err := l.ShipState(m.NextRequest())
		if err != nil {
			t.Fatal(err)
		}
		progress, err := m.Apply(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !progress {
			if g, b := m.Lag(); g == 0 && b == 0 {
				return
			}
		}
	}
	t.Fatal("mirror did not converge")
}

// requireSameDump asserts two WAL directories replay identically: same
// newest snapshot bytes, same record stream.
func requireSameDump(t *testing.T, leaderDir, mirrorDir string) {
	t.Helper()
	lSnap, lRecs, err := Dump(leaderDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mSnap, mRecs, err := Dump(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lSnap, mSnap) {
		t.Fatalf("snapshot bytes differ: leader %d bytes, mirror %d bytes", len(lSnap), len(mSnap))
	}
	if !reflect.DeepEqual(lRecs, mRecs) {
		t.Fatalf("record streams differ: leader %d records, mirror %d", len(lRecs), len(mRecs))
	}
}

// shipLeader opens a leader Log in a fresh directory and appends n
// outcomes starting at id.
func shipLeader(t *testing.T, dir string, start, n int) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	appendOutcomes(t, l, start, n)
	return l
}

func appendOutcomes(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShipMirrorRecoverEquivalence is the core follower property: a
// mirror synced over the shipping protocol replays exactly the
// leader's acked stream — snapshot and journal suffix byte-identical.
func TestShipMirrorRecoverEquivalence(t *testing.T) {
	leaderDir, mirrorDir := t.TempDir(), t.TempDir()
	l := shipLeader(t, leaderDir, 0, 40)
	defer func() { _ = l.Close() }()
	// A rotation gives the stream a snapshot + suffix shape.
	if err := l.Rotate(func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "{\"state\":\"after-40\"}")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	appendOutcomes(t, l, 40, 25)

	m, err := OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	syncMirror(t, l, m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	requireSameDump(t, leaderDir, mirrorDir)

	// Promotion is plain recovery on the mirror directory.
	promoted, stats, snap, recs := openRecovered(t, mirrorDir)
	defer func() { _ = promoted.Close() }()
	if string(snap) != "{\"state\":\"after-40\"}" {
		t.Fatalf("promoted snapshot = %q", snap)
	}
	if stats.Records != 25 || len(recs) != 25 {
		t.Fatalf("promoted replay: %d stats records, %d applied, want 25", stats.Records, len(recs))
	}
}

// TestShipMirrorResumeRecovery restarts the follower mid-sync: the
// second OpenMirror resumes from the repaired on-disk position instead
// of refetching, and converges to the same bytes.
func TestShipMirrorResumeRecovery(t *testing.T) {
	leaderDir, mirrorDir := t.TempDir(), t.TempDir()
	l := shipLeader(t, leaderDir, 0, 30)
	defer func() { _ = l.Close() }()

	m, err := OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A few protocol steps only — enough to land mid-journal.
	for i := 0; i < 3; i++ {
		rep, err := l.ShipState(m.NextRequest())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Apply(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	appendOutcomes(t, l, 30, 14)
	m2, err := OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if req := m2.NextRequest(); req.Kind != wire.WALKindJournal || req.Gen == 0 {
		t.Fatalf("resumed mirror did not keep its position: %+v", req)
	}
	syncMirror(t, l, m2)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	requireSameDump(t, leaderDir, mirrorDir)
}

// TestShipMirrorTornTailRecovery promotes a mirror whose journal tail
// was hand-torn (the follower crashed mid-append): recovery truncates
// to the acked prefix, exactly as leader-side crash repair would.
func TestShipMirrorTornTailRecovery(t *testing.T) {
	leaderDir, mirrorDir := t.TempDir(), t.TempDir()
	l := shipLeader(t, leaderDir, 0, 20)
	defer func() { _ = l.Close() }()
	m, err := OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	syncMirror(t, l, m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the mirrored tail: a torn half-record of garbage.
	tail := filepath.Join(mirrorDir, journalName(1))
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	promoted, stats, _, recs := openRecovered(t, mirrorDir)
	defer func() { _ = promoted.Close() }()
	if stats.TornBytes == 0 {
		t.Fatal("expected torn bytes to be repaired away")
	}
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want the full acked prefix of 20", len(recs))
	}
}

// TestShipMirrorRotationResync covers the reset path: the leader
// rotates (twice, with a snapshot big enough to need several chunks)
// after the mirror caught up, deleting the generation the mirror was
// following. The mirror must notice, refetch the snapshot and resume —
// and end byte-identical.
func TestShipMirrorRotationResync(t *testing.T) {
	leaderDir, mirrorDir := t.TempDir(), t.TempDir()
	l := shipLeader(t, leaderDir, 0, 10)
	defer func() { _ = l.Close() }()
	m, err := OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	syncMirror(t, l, m)

	big := bytes.Repeat([]byte("snapshot-payload/"), 40000) // ~680 KiB > one chunk
	if err := l.Rotate(func(w io.Writer) error {
		_, err := w.Write(big)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	appendOutcomes(t, l, 10, 7)
	syncMirror(t, l, m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	requireSameDump(t, leaderDir, mirrorDir)
	snap, recs, err := Dump(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, big) {
		t.Fatalf("mirrored snapshot %d bytes, want %d", len(snap), len(big))
	}
	if len(recs) != 7 {
		t.Fatalf("mirrored suffix has %d records, want 7", len(recs))
	}
}

// TestShipStateResetsFollowerAhead pins the restarted-leader case: a
// fetch past the leader's acked size draws a reset, never bytes.
func TestShipStateResetsFollowerAhead(t *testing.T) {
	l := shipLeader(t, t.TempDir(), 0, 5)
	defer func() { _ = l.Close() }()
	rep, err := l.ShipState(wire.WALFetch{Kind: wire.WALKindJournal, Gen: 1, Off: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flags&wire.WALFlagReset == 0 {
		t.Fatalf("expected reset, got %+v", rep)
	}
	// Unknown generations reset too.
	rep, err = l.ShipState(wire.WALFetch{Kind: wire.WALKindJournal, Gen: 99, Off: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flags&wire.WALFlagReset == 0 {
		t.Fatalf("expected reset for unknown gen, got %+v", rep)
	}
}
