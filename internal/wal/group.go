package wal

import (
	"fmt"
	"time"

	"overprov/internal/estimate"
)

// Group commit amortizes the fsync that dominates the completion hot
// path: concurrent RecordOutcome callers append their framed records
// into a shared in-memory window and block on its commit ticket; the
// window's creator is the leader, and it performs one journal write and
// one fsync covering every record the window accumulated, then releases
// all tickets at once. A caller is only acknowledged after the fsync
// that covers its record — the durability contract of per-record mode
// ("a crash an instant later replays it") is unchanged, only the number
// of fsyncs buying it drops.
//
// The batching is sync-absorbed: the leader detaches its window only
// after it has acquired l.mu, so while one leader's fsync is in flight,
// every arriving caller joins the next window, which commits as a unit
// the moment the journal mutex frees. Under contention the window size
// tracks the fsync latency automatically, and a lone caller with
// GroupWindow == 0 commits immediately — no added latency, no timer.
// A positive GroupWindow makes the leader linger up to that long (or
// until GroupMax records arrive) to widen the batch; that trades
// single-caller latency for fewer fsyncs and is opt-in.
//
// A window is created by the first appender and always carries at least
// that appender's record, so a window timer can never fire over an
// empty buffer and an idle log issues no fsyncs at all.
//
// Lock order: an appender holds only gcMu (rank 35) while joining a
// window — never l.mu — so the server's rotation read-lock (rank 20)
// precedes it exactly as it precedes l.mu. The leader acquires
// l.mu (30) and then gcMu (35) to detach the window; both chains ascend
// the canonical hierarchy (DESIGN.md §7). drainGroup waits on the
// ticket with no locks held, which is what lets Rotate and Close flush
// the pipeline without deadlocking against a leader that needs l.mu.

// Log lifecycle states for the lock-free pre-check on the group append
// path (the authoritative recovered/closed checks still run under l.mu
// in commitLocked).
const (
	stateUnrecovered = int32(iota)
	stateOpen
	stateClosed
)

// commitGroup is one commit window: the shared frame buffer and the
// ticket every caller in the window blocks on.
type commitGroup struct {
	buf []byte // framed records, appended under gcMu
	n   int    // record count
	// full is closed (under gcMu) when the window reaches GroupMax or a
	// drain wants it flushed; it wakes a leader lingering on its window
	// timer. fullClosed makes the close idempotent.
	full       chan struct{}
	fullClosed bool
	// done is the commit ticket: closed by the leader after the covering
	// fsync (or its failure), with err already set. Every caller in the
	// window returns err.
	done chan struct{}
	err  error
}

// closeFull wakes the leader early. Callers must hold gcMu.
func (w *commitGroup) closeFull() {
	if !w.fullClosed {
		w.fullClosed = true
		close(w.full)
	}
}

// groupAppend journals outcomes through the group-commit pipeline:
// join (or create) the current window, wait for its ticket, return the
// window's commit result. The creator leads the commit.
func (l *Log) groupAppend(outcomes []estimate.Outcome) error {
	switch l.state.Load() {
	case stateUnrecovered:
		return fmt.Errorf("wal: RecordOutcome before Recover")
	case stateClosed:
		return fmt.Errorf("wal: log is closed")
	}
	l.gcMu.Lock()
	w := l.cur
	leader := w == nil
	if leader {
		w = &commitGroup{full: make(chan struct{}), done: make(chan struct{})}
		l.cur = w
	}
	for i := range outcomes {
		w.buf = appendFrame(w.buf, FromOutcome(outcomes[i]))
	}
	w.n += len(outcomes)
	if w.n >= l.groupMax && l.cur == w {
		// Full: detach so the next caller starts a fresh window, and
		// wake the leader if it is lingering on the window timer.
		l.cur = nil
		w.closeFull()
	}
	l.gcMu.Unlock()
	if leader {
		l.leadCommit(w)
		return w.err
	}
	<-w.done
	return w.err
}

// leadCommit is the window creator's half: optionally linger for the
// commit window, then take the journal mutex, detach the window (every
// record that joined while we waited — including during a previous
// leader's fsync — commits with us), write and fsync once, and release
// every ticket.
func (l *Log) leadCommit(w *commitGroup) {
	if l.groupWindow > 0 {
		t := time.NewTimer(l.groupWindow)
		select {
		case <-w.full:
		case <-t.C:
		}
		t.Stop()
	}
	l.mu.Lock()
	l.gcMu.Lock()
	if l.cur == w {
		l.cur = nil
	}
	w.closeFull()
	buf, n := w.buf, w.n
	l.gcMu.Unlock()
	err := l.commitLocked(buf, n)
	l.mu.Unlock()
	w.err = err
	close(w.done)
}

// drainGroup flushes the commit pipeline through the ticket mechanism:
// wake the in-flight window's leader (if any), wait for its ticket, and
// repeat until no window is pending. No locks are held while waiting,
// so the leader is free to take l.mu. Rotation and Close run this
// before touching the journal — under server.Quiesce no appender is in
// flight and the drain is a no-op.
func (l *Log) drainGroup() {
	if !l.group {
		return
	}
	for {
		l.gcMu.Lock()
		w := l.cur
		if w != nil {
			w.closeFull()
		}
		l.gcMu.Unlock()
		if w == nil {
			return
		}
		<-w.done
	}
}

// SyncStats reports the append path's durability counters since Open:
// records durably journaled and journal fsyncs issued for them. The
// ratio is the group-commit win (1.0 in per-record mode, 1/batch in
// batch or group mode); cmd/schedd exposes both through Metrics.
func (l *Log) SyncStats() (records, syncs uint64) {
	return l.nRecords.Load(), l.nSyncs.Load()
}
