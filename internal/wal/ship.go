package wal

import (
	"os"
	"path/filepath"

	"overprov/internal/wire"
)

// WAL shipping, leader side. A follower replicates this Log's
// directory byte-for-byte by polling ShipState with wire.WALFetch
// requests; see internal/wire/repl.go for the protocol and Mirror
// (mirror.go) for the follower side.
//
// The unit of truth is the generation-numbered file layout the
// rotation protocol already maintains: the shipper serves raw bytes of
// journal-%08d.wal and snapshot-%08d.json files, never interpreting
// records, so every invariant recovery depends on (header magic, CRC
// framing, torn-tail truncation) transfers for free. The served
// prefix of the current journal is capped at the known-good size — a
// follower can never observe bytes that were not acked durable, which
// is what makes a promoted follower's state an acked prefix of the
// leader's.

// ShipState answers one follower poll. It takes l.mu only long enough
// to read the generation positions; file reads happen unlocked, which
// is safe because a journal's committed prefix and an installed
// snapshot are immutable (rotation deletes files, it never rewrites
// them — a read racing a deletion is answered with a reset and the
// follower re-syncs).
func (l *Log) ShipState(req wire.WALFetch) (wire.WALState, error) {
	l.mu.Lock()
	seq, snapSeq, size := l.seq, l.snapSeq, l.size
	l.mu.Unlock()

	reset := wire.WALState{
		Kind:    req.Kind,
		Flags:   wire.WALFlagReset,
		Gen:     resumeGen(snapSeq),
		SnapGen: snapSeq,
		Seq:     seq,
	}

	switch req.Kind {
	case wire.WALKindSnapshot:
		if snapSeq == 0 || req.Gen != snapSeq {
			return reset, nil
		}
		data, err := readFile(l.fs, filepath.Join(l.dir, snapshotName(snapSeq)))
		if err != nil {
			// Rotation replaced the snapshot between the position read
			// and the file read; redirect rather than fail the stream.
			return reset, nil
		}
		return chunkReply(req, uint64(len(data)), data, snapSeq, seq, 0), nil

	case wire.WALKindJournal:
		if req.Gen == 0 || req.Gen > seq || req.Gen < resumeGen(snapSeq) {
			return reset, nil
		}
		data, err := readFile(l.fs, filepath.Join(l.dir, journalName(req.Gen)))
		if err != nil {
			return reset, nil
		}
		var valid uint64
		var flags uint8
		if req.Gen == seq {
			// The live journal: serve only the acked-durable prefix.
			// The file may be longer (bytes a failed append could not
			// truncate away); those must never reach a follower.
			valid = uint64(size)
		} else {
			// A completed generation kept by an earlier failed
			// rotation. Its clean length is not tracked anymore, so
			// re-derive it the way recovery would: header + every
			// frame that checks out.
			frames, ok, err := checkHeader(data)
			if err != nil || !ok {
				return reset, nil
			}
			_, validFrames := scanRecords(frames)
			valid = uint64(len(journalHeader) + validFrames)
			flags = wire.WALFlagGenDone
		}
		if uint64(len(data)) < valid {
			// The position read and the file read raced a rotation
			// (the file is a fresh, shorter generation reusing a
			// name). Impossible for a monotonically growing journal;
			// resync.
			return reset, nil
		}
		return chunkReply(req, valid, data[:valid], snapSeq, seq, flags), nil
	}
	return reset, nil
}

// resumeGen is the oldest journal generation guaranteed on disk: the
// snapshot generation when one exists (rotation installs snapshot N
// and journal N together and deletes only generations below N), else
// generation 1 (nothing has ever been deleted).
func resumeGen(snapSeq uint64) uint64 {
	if snapSeq > 0 {
		return snapSeq
	}
	return 1
}

// chunkReply slices one bounded chunk at req.Off out of a file's valid
// bytes. An offset past the valid length draws a reset — the follower
// is ahead of what this leader acked (a restarted leader that lost a
// tail), and must re-sync from scratch.
func chunkReply(req wire.WALFetch, valid uint64, data []byte, snapSeq, seq uint64, flags uint8) wire.WALState {
	if req.Off > valid {
		return wire.WALState{
			Kind:    req.Kind,
			Flags:   wire.WALFlagReset,
			Gen:     resumeGen(snapSeq),
			SnapGen: snapSeq,
			Seq:     seq,
		}
	}
	end := req.Off + wire.MaxWALChunk
	if end > valid {
		end = valid
	}
	return wire.WALState{
		Kind:    req.Kind,
		Flags:   flags,
		Gen:     req.Gen,
		Off:     req.Off,
		Size:    valid,
		SnapGen: snapSeq,
		Seq:     seq,
		Data:    data[req.Off:end],
	}
}

// removeWALFiles deletes every generation-numbered WAL file and every
// leftover temp file in dir, except keep (the snapshot assembly in
// flight). It is the mirror's reset broom; harmless extra files are
// left alone.
func removeWALFiles(fsys FS, dir, keep string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == keep {
			continue
		}
		_, isJournal := parseSeq(name, "journal-", ".wal")
		_, isSnap := parseSeq(name, "snapshot-", ".json")
		if isJournal || isSnap || filepath.Ext(name) == ".tmp" {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}
