package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"overprov/internal/estimate"
)

// Options configures a Log.
type Options struct {
	// FS is the filesystem; nil selects the real one (OSFS).
	FS FS
	// NoSync skips every fsync. Only for tests and benchmarks that
	// measure the non-durability cost; the daemon never sets it.
	NoSync bool
	// GroupCommit routes appends through the batched-fsync pipeline
	// (group.go): concurrent callers share one journal fsync and are
	// acknowledged only after it. Durability per acked record is
	// identical to per-record mode. Ignored when NoSync is set (there
	// is no fsync to amortize).
	GroupCommit bool
	// GroupWindow is how long a group-commit leader lingers for more
	// callers before fsyncing. 0 (the default) commits immediately —
	// batching still happens, absorbed by fsync latency under load.
	GroupWindow time.Duration
	// GroupMax caps records per commit window; a full window fsyncs
	// without waiting out GroupWindow. 0 selects 64.
	GroupMax int
}

// RecoveryStats reports what recovery found and repaired.
type RecoveryStats struct {
	// SnapshotSeq is the generation of the snapshot loaded (0 = none).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Journals is how many journal files were replayed.
	Journals int `json:"journals"`
	// Records is how many feedback records were replayed.
	Records int `json:"records"`
	// TornBytes is how many trailing bytes were cut as torn or corrupt.
	TornBytes int64 `json:"torn_bytes"`
	// DroppedJournals counts journal files discarded because an earlier
	// journal was corrupt mid-stream (never from a clean shutdown).
	DroppedJournals int `json:"dropped_journals"`
	// Corrupt is true when the truncation point was not the tail of the
	// last journal — i.e. real corruption, not a torn final write.
	Corrupt bool `json:"corrupt"`
}

// Log is a feedback write-ahead log bound to one directory. All methods
// are safe for concurrent use; appends from HTTP handler goroutines and
// the periodic rotation in cmd/schedd share the one mutex.
//
// Lock order: Rotate calls the snapshot callback (typically the
// estimator's SaveState, which takes the estimator's shard locks) under
// l.mu — so l.mu precedes the estimator locks and nothing acquires them
// in the other order. The server holds its rotation read-lock (see
// server.Quiesce) around RecordOutcome, which precedes both; l.mu is
// never held while acquiring anything but the estimator locks.
type Log struct {
	// mu serialises appends, rotation and recovery; it sits between the
	// server's rotation lock and the estimator locks in the canonical
	// hierarchy (DESIGN.md §7).
	//overprov:lock rank=30
	mu     sync.Mutex
	fs     FS
	dir    string
	noSync bool

	seq     uint64 // current journal generation
	journal File   // open for append; nil after Close
	buf     []byte // scratch frame buffer, guarded by mu

	// size is the journal's known-good length: header plus every frame
	// whose write succeeded. A failed append truncates back to it so a
	// partial frame can never sit between acked records (recovery cuts
	// at the first invalid frame — garbage mid-file would take every
	// later acked record with it). Guarded by mu.
	size int64
	// dirty is set while the journal holds bytes no fsync has covered
	// yet; Close syncs only when it is set (the rotation double-sync
	// fix). Guarded by mu.
	dirty bool
	// torn is set when a failed append could not be truncated away:
	// the tail is garbage, so further appends must fail rather than
	// strand acked frames behind it. A successful Rotate starts a
	// clean generation and clears it. Guarded by mu.
	torn bool

	snapSeq   uint64
	pending   []Record // validated records awaiting Recover
	stats     RecoveryStats
	recovered bool

	// state mirrors recovered/closed for the group append path's
	// lock-free pre-check (group.go).
	state atomic.Int32

	// Group-commit pipeline (group.go). gcMu guards the current commit
	// window; appenders take it without l.mu, the leader takes it under
	// l.mu — both ascend the canonical hierarchy.
	//overprov:lock rank=35
	gcMu        sync.Mutex
	cur         *commitGroup
	group       bool
	groupWindow time.Duration
	groupMax    int

	// Durability counters (SyncStats).
	nRecords atomic.Uint64
	nSyncs   atomic.Uint64
}

func journalName(seq uint64) string  { return fmt.Sprintf("journal-%08d.wal", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.json", seq) }

// parseSeq extracts the generation from a journal/snapshot file name.
// The middle segment must be exactly a positive decimal number —
// anything else (trailing garbage, a sign, an overflow) means the file
// is not a WAL generation and must be left alone, never "repaired"
// against a reconstructed canonical name it does not match.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// dirScan is everything one read pass learns about a WAL directory,
// including the repairs Open must apply. Dump uses the same scan
// without applying anything.
type dirScan struct {
	snapSeq    uint64
	journals   []uint64 // kept generations, ascending (seq ≥ snapSeq)
	records    []Record // replayable stream across kept journals
	truncSeq   uint64   // journal to truncate (0 = none)
	truncTo    int64    // file size to truncate it to (includes header)
	tailSize   int64    // valid byte length of the tail journal after repair
	tornHeader bool     // truncSeq's header itself is torn: reset file
	dropped    []uint64 // journals after a mid-stream corruption
	tornBytes  int64
	corrupt    bool
	stale      []string // file names superseded by the newest snapshot
	tmps       []string // leftover temp files from interrupted snapshots
}

// scanDir reads the directory and validates every kept journal.
func scanDir(fs FS, dir string) (*dirScan, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sc := &dirScan{}
	var journals, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			sc.tmps = append(sc.tmps, name)
		default:
			if seq, ok := parseSeq(name, "journal-", ".wal"); ok {
				journals = append(journals, seq)
			} else if seq, ok := parseSeq(name, "snapshot-", ".json"); ok {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(journals, func(i, j int) bool { return journals[i] < journals[j] })
	for _, s := range snaps {
		if s > sc.snapSeq {
			sc.snapSeq = s
		}
	}
	for _, s := range snaps {
		if s < sc.snapSeq {
			sc.stale = append(sc.stale, snapshotName(s))
		}
	}
	for _, j := range journals {
		if j < sc.snapSeq {
			sc.stale = append(sc.stale, journalName(j))
			continue
		}
		sc.journals = append(sc.journals, j)
	}

	// Validate kept journals oldest-first. The replayable stream ends at
	// the first invalid frame; journals after that point are dropped
	// (that can only happen on real corruption, since rotation creates
	// journal N+1 only after journal N is fully synced).
	for i, seq := range sc.journals {
		data, err := readFile(fs, filepath.Join(dir, journalName(seq)))
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", journalName(seq), err)
		}
		last := i == len(sc.journals)-1
		frames, ok, err := checkHeader(data)
		if err != nil {
			return nil, err
		}
		if !ok { // torn header: no record ever made it to this file
			sc.truncSeq, sc.truncTo, sc.tornHeader = seq, 0, true
			sc.tailSize = int64(len(journalHeader)) // recreated with a fresh header
			sc.tornBytes += int64(len(data))
			if !last {
				sc.corrupt = true
				sc.dropped = sc.journals[i+1:]
				sc.journals = sc.journals[:i+1]
			}
			break
		}
		recs, valid := scanRecords(frames)
		sc.records = append(sc.records, recs...)
		sc.tailSize = int64(len(journalHeader) + valid)
		if valid < len(frames) {
			sc.truncSeq = seq
			sc.truncTo = int64(len(journalHeader) + valid)
			sc.tornBytes += int64(len(frames) - valid)
			if !last {
				sc.corrupt = true
				sc.dropped = sc.journals[i+1:]
				sc.journals = sc.journals[:i+1]
			}
			break
		}
	}
	return sc, nil
}

// readFile reads a whole file through the FS abstraction.
func readFile(fs FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// Open binds a Log to dir, creating it if needed, and repairs crash
// damage: leftover temp files are removed, the first torn or corrupt
// record and everything after it is truncated away, and journal files
// superseded by the newest snapshot are deleted. Open does not touch
// the estimator — call Recover next to load the snapshot and replay the
// journal suffix, then the Log is ready for RecordOutcome/Rotate.
func Open(dir string, opts Options) (*Log, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sc, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{fs: fsys, dir: dir, noSync: opts.NoSync, snapSeq: sc.snapSeq}
	l.group = opts.GroupCommit && !opts.NoSync
	l.groupWindow = opts.GroupWindow
	l.groupMax = opts.GroupMax
	if l.groupMax <= 0 {
		l.groupMax = 64
	}
	l.pending = sc.records
	l.stats = RecoveryStats{
		SnapshotSeq:     sc.snapSeq,
		Journals:        len(sc.journals),
		TornBytes:       sc.tornBytes,
		DroppedJournals: len(sc.dropped),
		Corrupt:         sc.corrupt,
	}

	// Repairs: temp files, stale generations, dropped journals, torn tail.
	for _, name := range sc.tmps {
		_ = l.fs.Remove(filepath.Join(dir, name))
	}
	for _, name := range sc.stale {
		_ = l.fs.Remove(filepath.Join(dir, name))
	}
	for _, seq := range sc.dropped {
		_ = l.fs.Remove(filepath.Join(dir, journalName(seq)))
	}
	if sc.truncSeq != 0 && !sc.tornHeader {
		if err := l.truncateJournal(sc.truncSeq, sc.truncTo); err != nil {
			return nil, err
		}
	}

	// Open (or create) the current journal for appending.
	switch {
	case len(sc.journals) == 0:
		l.seq = sc.snapSeq
		if l.seq == 0 {
			l.seq = 1
		}
		if l.journal, err = l.createJournal(l.seq); err != nil {
			return nil, err
		}
		l.size = int64(len(journalHeader))
	default:
		l.seq = sc.journals[len(sc.journals)-1]
		if sc.truncSeq == l.seq && sc.tornHeader {
			// The tail journal's header itself is torn: recreate it.
			if l.journal, err = l.createJournal(l.seq); err != nil {
				return nil, err
			}
		} else {
			f, err := l.fs.OpenFile(filepath.Join(dir, journalName(l.seq)),
				os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.journal = f
		}
		l.size = sc.tailSize
	}
	return l, nil
}

// truncateJournal cuts a journal to size and syncs the cut.
func (l *Log) truncateJournal(seq uint64, size int64) error {
	path := filepath.Join(l.dir, journalName(seq))
	f, err := l.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncating %s: %w", journalName(seq), err)
	}
	err = f.Truncate(size)
	if err == nil && !l.noSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: truncating %s: %w", journalName(seq), err)
	}
	return nil
}

// createJournal creates an empty journal file with a durable header.
// The file is opened O_APPEND so that after a failed append is
// truncated away the next write lands at the new end of file, never
// past a hole at the old offset.
func (l *Log) createJournal(seq uint64) (File, error) {
	path := filepath.Join(l.dir, journalName(seq))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err = f.Write(journalHeader); err == nil && !l.noSync {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = l.fs.Remove(path)
		return nil, fmt.Errorf("wal: creating %s: %w", journalName(seq), err)
	}
	if !l.noSync {
		if err := l.fs.SyncDir(l.dir); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("wal: creating %s: %w", journalName(seq), err)
		}
	}
	return f, nil
}

// Recover finishes crash recovery: load is called with the newest
// snapshot (skipped when none exists), then apply is called for every
// replayable journal record in append order. It must be called exactly
// once, before the first RecordOutcome or Rotate — the Log refuses to
// append over an unreplayed suffix, because feedback applied out of
// order is feedback corrupted.
//
//overprov:callsunder mu
func (l *Log) Recover(load func(io.Reader) error, apply func(Record) error) (RecoveryStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recovered {
		return l.stats, fmt.Errorf("wal: Recover called twice")
	}
	if l.snapSeq > 0 && load != nil {
		path := filepath.Join(l.dir, snapshotName(l.snapSeq))
		f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return l.stats, fmt.Errorf("wal: %w", err)
		}
		err = load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return l.stats, fmt.Errorf("wal: loading snapshot %d: %w", l.snapSeq, err)
		}
	}
	for i, r := range l.pending {
		if apply != nil {
			if err := apply(r); err != nil {
				return l.stats, fmt.Errorf("wal: replaying record %d: %w", i, err)
			}
		}
	}
	l.stats.Records = len(l.pending)
	l.pending = nil
	l.recovered = true
	l.state.Store(stateOpen)
	return l.stats, nil
}

// RecordOutcome appends one acked feedback event durably: the framed
// record is written and fsynced before the call returns, so a crash an
// instant later replays it. The server calls this before training the
// estimator — write-ahead, in the literal sense. With GroupCommit the
// fsync is shared with concurrent callers (group.go); the return-after-
// durable contract is identical.
func (l *Log) RecordOutcome(o estimate.Outcome) error {
	if l.group {
		one := [1]estimate.Outcome{o}
		return l.groupAppend(one[:])
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = appendFrame(l.buf[:0], FromOutcome(o))
	return l.commitLocked(l.buf, 1)
}

// RecordOutcomes appends a batch of acked feedback events as one append
// group: each record is individually framed (replay is per-record), and
// the whole batch rides one commit ticket. In group-commit mode the
// batch joins the current window; in per-record mode every record pays
// its own fsync — the strict PR 5 baseline the benchmarks compare
// against. The error, if any, covers the whole batch: none of its
// records is acknowledged.
func (l *Log) RecordOutcomes(outcomes []estimate.Outcome) error {
	if len(outcomes) == 0 {
		return nil
	}
	if l.group {
		return l.groupAppend(outcomes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range outcomes {
		l.buf = appendFrame(l.buf[:0], FromOutcome(outcomes[i]))
		if err := l.commitLocked(l.buf, 1); err != nil {
			return err
		}
	}
	return nil
}

// commitLocked writes buf (n framed records) to the journal and fsyncs
// it, maintaining the known-good size and the durability counters. A
// failed write or sync truncates the file back to the known-good size
// so no partial frame can strand later acked records behind it; if even
// that repair fails the log goes torn and refuses appends until a
// rotation starts a clean generation. Callers hold l.mu.
func (l *Log) commitLocked(buf []byte, n int) error {
	if !l.recovered {
		return fmt.Errorf("wal: RecordOutcome before Recover")
	}
	if l.journal == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if l.torn {
		return fmt.Errorf("wal: journal tail is torn; appends resume after rotation")
	}
	if _, err := l.journal.Write(buf); err != nil {
		l.repairTailLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	if !l.noSync {
		if err := l.journal.Sync(); err != nil {
			// The frames are on the file but their durability is
			// unknown and the caller will not ack them; cut them off so
			// the known-good prefix stays exact.
			l.repairTailLocked()
			return fmt.Errorf("wal: append sync: %w", err)
		}
		l.dirty = false
		l.nSyncs.Add(1)
	}
	l.size += int64(len(buf))
	l.nRecords.Add(uint64(n))
	return nil
}

// repairTailLocked truncates the journal back to its known-good size
// after a failed append, syncing the cut. On any repair failure the log
// is marked torn (the tail may hold garbage that would eat later
// records at recovery) and appends fail until Rotate succeeds.
func (l *Log) repairTailLocked() {
	if err := l.journal.Truncate(l.size); err != nil {
		l.torn = true
		return
	}
	if !l.noSync {
		if err := l.journal.Sync(); err != nil {
			l.torn = true
			return
		}
	}
	l.dirty = false
}

// Rotate snapshots the estimator and starts a fresh journal generation:
//
//  1. journal N+1 is created and synced; new appends go there;
//  2. save writes the estimator state to snapshot-N+1.json.tmp,
//     fsynced, then atomically renamed over and the directory fsynced;
//  3. generation N's files are deleted.
//
// Step (3) is only sound when the state save writes already reflects
// every record in journal N: the caller must ensure no feedback event
// is between its RecordOutcome and its estimator training when Rotate
// runs — l.mu alone cannot, because training happens outside this
// package. cmd/schedd guarantees it by routing rotation through
// server.Quiesce, whose write lock excludes that window.
//
// Every failure mode leaves a recoverable directory: aborting before
// (2) completes leaves snapshot N plus journals N and N+1, which replay
// in order; a disk-full snapshot aborts cleanly and the old generation
// keeps growing until a later Rotate succeeds. Appends block for the
// duration (the snapshot is a few KB per thousand similarity groups).
//
//overprov:callsunder mu
func (l *Log) Rotate(save func(w io.Writer) error) error {
	// Flush the group-commit pipeline through its ticket mechanism
	// first (no-op without GroupCommit, and under server.Quiesce the
	// pipeline is already empty): every acked record is then fsynced,
	// so rotation closes the old journal without re-syncing it.
	l.drainGroup()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.recovered {
		return fmt.Errorf("wal: Rotate before Recover")
	}
	if l.journal == nil {
		return fmt.Errorf("wal: log is closed")
	}
	newSeq := l.seq + 1
	nj, err := l.createJournal(newSeq)
	if err != nil {
		return err // old generation untouched; appends continue
	}
	old := l.journal
	l.journal, l.seq = nj, newSeq
	l.size = int64(len(journalHeader))
	l.dirty = false
	l.torn = false  // fresh generation: a torn old tail is now harmless
	_ = old.Close() // every acked record in it is already synced

	// Install the snapshot atomically: tmp → fsync → rename → dir fsync.
	final := filepath.Join(l.dir, snapshotName(newSeq))
	tmp := final + ".tmp"
	f, err := l.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	err = save(f)
	if err == nil && !l.noSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = l.fs.Rename(tmp, final)
	}
	if err == nil && !l.noSync {
		err = l.fs.SyncDir(l.dir)
	}
	if err != nil {
		_ = l.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot %d: %w", newSeq, err)
	}
	oldSnap := l.snapSeq
	l.snapSeq = newSeq

	// The new snapshot covers every prior generation; delete them.
	// Best-effort: leftovers are cleaned by the next Open or Rotate.
	// Journals older than oldSnap were already removed by earlier
	// rotations (or by Open), so the scan starts there.
	start := oldSnap
	if start == 0 {
		start = 1
	}
	for seq := start; seq < newSeq; seq++ {
		_ = l.fs.Remove(filepath.Join(l.dir, journalName(seq)))
	}
	if oldSnap > 0 {
		_ = l.fs.Remove(filepath.Join(l.dir, snapshotName(oldSnap)))
	}
	return nil
}

// Close drains the group-commit pipeline and closes the current
// journal, syncing it only when unsynced bytes remain (every
// successful commit already fsyncs, so the old unconditional sync here
// was a second fsync per shutdown for nothing). The Log is unusable
// afterwards.
func (l *Log) Close() error {
	l.state.Store(stateClosed) // new group appends are refused
	l.drainGroup()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.journal == nil {
		return nil
	}
	var err error
	if l.dirty && !l.noSync {
		err = l.journal.Sync()
	}
	if cerr := l.journal.Close(); err == nil {
		err = cerr
	}
	l.journal = nil
	return err
}

// Seq returns the current journal generation (for tests and logs).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dump reads a WAL directory without repairing or opening it: the
// newest snapshot's raw bytes (nil when none) and every replayable
// record, exactly the stream Recover would apply. Tests use it to check
// the recovered-state-equals-snapshot-plus-replay invariant from the
// outside.
func Dump(dir string, fsys FS) (snapshot []byte, recs []Record, err error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	sc, err := scanDir(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	if sc.snapSeq > 0 {
		snapshot, err = readFile(fsys, filepath.Join(dir, snapshotName(sc.snapSeq)))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	return snapshot, sc.records, nil
}
