package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"overprov/internal/estimate"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// outcomeN builds a distinguishable feedback outcome; JobID n is the
// identity the tests track across crash/recover cycles.
func outcomeN(n int) estimate.Outcome {
	return estimate.Outcome{
		Job: &trace.Job{
			ID:      n,
			User:    n % 7,
			App:     n % 3,
			Nodes:   1 + n%4,
			ReqMem:  units.MemSize(32),
			ReqTime: units.Seconds(600),
		},
		Allocated: units.MemSize(float64(8 + n)),
		Used:      units.MemSize(float64(n) / 2),
		Success:   n%2 == 0,
		Explicit:  n%5 == 0,
	}
}

// openRecovered opens dir and runs recovery, collecting the replayed
// records and the snapshot payload handed to load.
func openRecovered(t *testing.T, dir string) (*Log, RecoveryStats, []byte, []Record) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	var recs []Record
	stats, err := l.Recover(
		func(r io.Reader) error {
			var err error
			snap, err = io.ReadAll(r)
			return err
		},
		func(r Record) error { recs = append(recs, r); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	return l, stats, snap, recs
}

func TestFrameRoundTrip(t *testing.T) {
	want := []Record{
		FromOutcome(outcomeN(0)),
		FromOutcome(outcomeN(1)),
		{JobID: -9, User: -1, App: 2, Nodes: 3, ReqMemMB: 0.5, Success: true},
		{}, // zero record must survive too
	}
	var buf []byte
	for _, r := range want {
		buf = appendFrame(buf, r)
	}
	got, valid := scanRecords(buf)
	if valid != len(buf) {
		t.Fatalf("valid prefix %d, want all %d bytes", valid, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	o := outcomeN(42)
	back := FromOutcome(o).Outcome()
	if back.Job.ID != o.Job.ID || back.Job.User != o.Job.User || back.Job.App != o.Job.App ||
		back.Job.Nodes != o.Job.Nodes || !back.Job.ReqMem.Eq(o.Job.ReqMem) {
		t.Errorf("job fields changed: %+v vs %+v", back.Job, o.Job)
	}
	if !back.Allocated.Eq(o.Allocated) || !back.Used.Eq(o.Used) ||
		back.Success != o.Success || back.Explicit != o.Explicit {
		t.Errorf("outcome fields changed: %+v vs %+v", back, o)
	}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, stats, _, recs := openRecovered(t, dir)
	if stats.Records != 0 || len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", stats.Records)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, stats, snap, recs := openRecovered(t, dir)
	if snap != nil {
		t.Fatalf("no snapshot was taken, load saw %d bytes", len(snap))
	}
	if stats.Records != n || len(recs) != n {
		t.Fatalf("replayed %d records, want %d (stats %+v)", len(recs), n, stats)
	}
	for i, r := range recs {
		if r != FromOutcome(outcomeN(i)) {
			t.Errorf("record %d: got %+v", i, r)
		}
	}
	if stats.TornBytes != 0 || stats.Corrupt {
		t.Errorf("clean shutdown reported damage: %+v", stats)
	}
}

// TestDuplicateRecords: the WAL is an append log, not a set — the same
// outcome acked twice must replay twice (the estimator trained on it
// twice).
func TestDuplicateRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	for i := 0; i < 2; i++ {
		if err := l.RecordOutcome(outcomeN(7)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	_, _, _, recs := openRecovered(t, dir)
	if len(recs) != 2 {
		t.Fatalf("duplicate record replayed %d times, want 2", len(recs))
	}
	if recs[0] != recs[1] {
		t.Fatalf("duplicates differ: %+v vs %+v", recs[0], recs[1])
	}
}

// TestTornTail cuts the journal at every byte length and checks that
// recovery truncates to the last whole record, never errors, and the
// log accepts appends afterwards.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	const n = 3
	for i := 0; i < n; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, journalName(1))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(whole); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, journalName(1)), whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, stats, _, recs := openRecovered(t, dir)
			wantRecs := 0
			if cut >= len(journalHeader) {
				wantRecs = (cut - len(journalHeader)) / frameLen
			}
			if len(recs) != wantRecs {
				t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), wantRecs)
			}
			for i, r := range recs {
				if r != FromOutcome(outcomeN(i)) {
					t.Errorf("record %d corrupted by truncation: %+v", i, r)
				}
			}
			wantTorn := int64(cut)
			if cut >= len(journalHeader) {
				wantTorn = int64(cut-len(journalHeader)) % int64(frameLen)
			}
			if stats.TornBytes != wantTorn {
				t.Errorf("cut %d: torn bytes %d, want %d", cut, stats.TornBytes, wantTorn)
			}
			if stats.Corrupt {
				t.Errorf("cut %d: a torn tail is not corruption", cut)
			}
			// The log must be writable after every repair.
			if err := l.RecordOutcome(outcomeN(99)); err != nil {
				t.Fatalf("cut %d: append after repair: %v", cut, err)
			}
			l.Close()
			_, _, _, recs = openRecovered(t, dir)
			if len(recs) != wantRecs+1 || recs[len(recs)-1] != FromOutcome(outcomeN(99)) {
				t.Fatalf("cut %d: post-repair append not replayed (%d records)", cut, len(recs))
			}
		})
	}
}

// TestBitFlip flips one bit in each record's payload in turn; replay
// must stop at the damaged record and keep everything before it.
func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	const n = 4
	for i := 0; i < n; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	whole, err := os.ReadFile(filepath.Join(dir, journalName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		t.Run(fmt.Sprintf("record=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			flipped := bytes.Clone(whole)
			// Flip a bit in record k's payload.
			flipped[len(journalHeader)+k*frameLen+frameHeaderLen+20] ^= 0x10
			if err := os.WriteFile(filepath.Join(dir, journalName(1)), flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			_, stats, _, recs := openRecovered(t, dir)
			if len(recs) != k {
				t.Fatalf("flip in record %d: replayed %d records, want %d", k, len(recs), k)
			}
			if stats.TornBytes != int64((n-k)*frameLen) {
				t.Errorf("flip in record %d: torn bytes %d, want %d", k, stats.TornBytes, (n-k)*frameLen)
			}
		})
	}
}

func TestBadMagicIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName(1)), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("wrong journal magic must fail Open, not silently truncate")
	}
}

func TestRotate(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot "covers" records 0..2: save a marker the reopen can check.
	save := func(w io.Writer) error {
		return json.NewEncoder(w).Encode(map[string]int{"covered": 3})
	}
	if err := l.Rotate(save); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 2 {
		t.Fatalf("after first Rotate seq=%d, want 2", got)
	}
	for i := 3; i < 5; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Generation 1 must be gone.
	if _, err := os.Stat(filepath.Join(dir, journalName(1))); !os.IsNotExist(err) {
		t.Errorf("journal generation 1 not deleted after rotation: %v", err)
	}

	_, stats, snap, recs := openRecovered(t, dir)
	if stats.SnapshotSeq != 2 {
		t.Fatalf("snapshot seq %d, want 2", stats.SnapshotSeq)
	}
	var m map[string]int
	if err := json.Unmarshal(snap, &m); err != nil || m["covered"] != 3 {
		t.Fatalf("snapshot payload %q, %v", snap, err)
	}
	if len(recs) != 2 || recs[0] != FromOutcome(outcomeN(3)) || recs[1] != FromOutcome(outcomeN(4)) {
		t.Fatalf("replayed %d records after snapshot, want exactly the post-rotation 2: %+v", len(recs), recs)
	}
}

func TestRotateRepeatedly(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	count := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 2; i++ {
			if err := l.RecordOutcome(outcomeN(count)); err != nil {
				t.Fatal(err)
			}
			count++
		}
		n := count
		if err := l.Rotate(func(w io.Writer) error {
			return json.NewEncoder(w).Encode(n)
		}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Exactly one snapshot and one (empty) journal should remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("rotation left %d files, want 2: %v", len(entries), names)
	}
	_, stats, snap, recs := openRecovered(t, dir)
	var covered int
	if err := json.Unmarshal(snap, &covered); err != nil || covered != count {
		t.Fatalf("final snapshot covers %d, want %d (%v)", covered, count, err)
	}
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("replayed %d records, want 0 (all snapshotted)", len(recs))
	}
}

func TestLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeN(1)); err == nil {
		t.Error("RecordOutcome before Recover must fail")
	}
	if err := l.Rotate(func(io.Writer) error { return nil }); err == nil {
		t.Error("Rotate before Recover must fail")
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err == nil {
		t.Error("second Recover must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close should be a no-op, got %v", err)
	}
	if err := l.RecordOutcome(outcomeN(1)); err == nil {
		t.Error("RecordOutcome after Close must fail")
	}
}

// TestReplayErrorPropagates: an apply error aborts recovery — feedback
// must not be silently skipped.
func TestReplayErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	if err := l.RecordOutcome(outcomeN(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantErr := fmt.Errorf("estimator rejected it")
	if _, err := l2.Recover(nil, func(Record) error { return wantErr }); err == nil {
		t.Fatal("apply error must propagate out of Recover")
	}
}

// TestDumpMatchesRecover: Dump must see exactly the stream Recover
// replays, without mutating the directory.
func TestDumpMatchesRecover(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(func(w io.Writer) error { _, err := w.Write([]byte(`"snap"`)); return err }); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := l.RecordOutcome(outcomeN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	snap, recs, err := Dump(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, snap2, recs2 := openRecovered(t, dir)
	if !bytes.Equal(snap, snap2) {
		t.Errorf("Dump snapshot %q differs from Recover's %q", snap, snap2)
	}
	if len(recs) != len(recs2) {
		t.Fatalf("Dump saw %d records, Recover %d", len(recs), len(recs2))
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Errorf("record %d differs: %+v vs %+v", i, recs[i], recs2[i])
		}
	}
}

// TestStaleGenerationsCleaned: files a crashed rotation left behind
// (old journals/snapshots below the newest snapshot, temp files) are
// removed by Open.
func TestStaleGenerationsCleaned(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	if err := l.RecordOutcome(outcomeN(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(func(w io.Writer) error { _, err := w.Write([]byte("{}")); return err }); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordOutcome(outcomeN(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Fake crash litter: a stale journal, a stale snapshot, a temp file.
	for _, name := range []string{journalName(1), snapshotName(1), snapshotName(3) + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(""), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The stale journal needs a valid header or Open treats it as torn.
	if err := os.WriteFile(filepath.Join(dir, journalName(1)), journalHeader, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, stats, _, recs := openRecovered(t, dir)
	defer l2.Close()
	if stats.SnapshotSeq != 2 || len(recs) != 1 {
		t.Fatalf("recovery confused by litter: %+v, %d records", stats, len(recs))
	}
	for _, name := range []string{journalName(1), snapshotName(1), snapshotName(3) + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stale file %s survived Open", name)
		}
	}
}

// TestParseSeqRejectsForeignNames: the middle segment must be exactly a
// positive decimal number. fmt.Sscanf("%d") accepted trailing garbage,
// so a foreign or renamed file (journal-000001x.wal) parsed as seq 1
// and could later be "repaired" — truncated or deleted — against a
// reconstructed canonical name that names a different file entirely.
func TestParseSeqRejectsForeignNames(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{"journal-00000001.wal", 1, true},
		{"journal-12345678.wal", 12345678, true},
		{"journal-000001x.wal", 0, false},  // trailing garbage in the number
		{"journal-x0000001.wal", 0, false}, // leading garbage
		{"journal-0000 001.wal", 0, false}, // embedded space
		{"journal-+0000001.wal", 0, false}, // sign
		{"journal--0000001.wal", 0, false},
		{"journal-.wal", 0, false},                     // empty segment
		{"journal-00000000.wal", 0, false},             // generation zero is reserved
		{"journal-18446744073709551616.wal", 0, false}, // uint64 overflow
		{"journal-00000001.wal.bak", 0, false},
		{"notes-00000001.wal", 0, false},
	}
	for _, c := range cases {
		seq, ok := parseSeq(c.name, "journal-", ".wal")
		if seq != c.seq || ok != c.ok {
			t.Errorf("parseSeq(%q) = (%d, %v), want (%d, %v)", c.name, seq, ok, c.seq, c.ok)
		}
	}
}

// TestForeignFileLeftAlone: a non-WAL file whose name merely resembles
// a journal must be invisible to Open — neither replayed, repaired,
// nor deleted.
func TestForeignFileLeftAlone(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openRecovered(t, dir)
	if err := l.RecordOutcome(outcomeN(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	foreign := filepath.Join(dir, "journal-000001x.wal")
	if err := os.WriteFile(foreign, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, stats, _, recs := openRecovered(t, dir)
	defer l2.Close()
	if stats.Journals != 1 || len(recs) != 1 || stats.TornBytes != 0 {
		t.Fatalf("foreign file changed recovery: %+v, %d records", stats, len(recs))
	}
	data, err := os.ReadFile(foreign)
	if err != nil || string(data) != "not a journal" {
		t.Fatalf("foreign file was touched: %q, %v", data, err)
	}
}
