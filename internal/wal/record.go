// Package wal gives the scheduler daemon a durable feedback pipeline:
// every acked completion is appended to a checksummed, length-prefixed
// journal *before* the estimator trains on it, and learned state is
// snapshotted with full fsync discipline. Recovery is load-snapshot +
// replay-journal-suffix, truncating at the first torn or corrupt
// record, so a crash — even a SIGKILL mid-write — loses at most the
// records that were never acknowledged.
//
// The paper's estimator (Algorithm 1) learns only from implicit
// success/failure feedback, so feedback lost in a crash is learning the
// scheduler never recovers. The WAL makes the feedback loop durable
// with two files per generation N in one directory:
//
//	journal-%08d.wal   appended records since snapshot N was taken
//	snapshot-%08d.json estimator state covering everything before
//	                   journal N existed
//
// Rotation (Log.Rotate) creates journal N+1, snapshots the estimator
// (which has already applied journal N), atomically installs
// snapshot-N+1, and only then deletes generation N. Every crash window
// leaves a directory from which load-newest-snapshot + replay-journals
// reconstructs exactly the acked feedback stream; see DESIGN.md §12 for
// the window-by-window argument.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"overprov/internal/estimate"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Record is the wire form of one feedback event: the similarity-key
// fields of the completed job plus the outcome Algorithm 1 consumes.
// Memory quantities are stored as raw MB floats (the unit types are an
// in-memory discipline; the file format spells its units in the field
// names).
type Record struct {
	JobID    int64
	User     int
	App      int
	Nodes    int
	ReqMemMB float64
	ReqTimeS float64
	// AllocatedMB is the rounded estimate E' the job ran with.
	AllocatedMB float64
	// UsedMB carries explicit usage feedback; meaningful only when
	// Explicit is set.
	UsedMB   float64
	Success  bool
	Explicit bool
}

// FromOutcome converts an estimator outcome to its wire form.
func FromOutcome(o estimate.Outcome) Record {
	r := Record{
		Success:     o.Success,
		Explicit:    o.Explicit,
		AllocatedMB: o.Allocated.MBf(),
		UsedMB:      o.Used.MBf(),
	}
	if o.Job != nil {
		r.JobID = int64(o.Job.ID)
		r.User = o.Job.User
		r.App = o.Job.App
		r.Nodes = o.Job.Nodes
		r.ReqMemMB = o.Job.ReqMem.MBf()
		r.ReqTimeS = o.Job.ReqTime.Sec()
	}
	return r
}

// Outcome reconstructs the estimator outcome a replayed record carries.
func (r Record) Outcome() estimate.Outcome {
	return estimate.Outcome{
		Job: &trace.Job{
			ID:      int(r.JobID),
			User:    r.User,
			App:     r.App,
			Nodes:   r.Nodes,
			ReqMem:  units.MemSize(r.ReqMemMB),
			ReqTime: units.Seconds(r.ReqTimeS),
		},
		Allocated: units.MemSize(r.AllocatedMB),
		Used:      units.MemSize(r.UsedMB),
		Success:   r.Success,
		Explicit:  r.Explicit,
	}
}

// Wire framing: every record is
//
//	uint32 payload length | uint32 CRC-32C of payload | payload
//
// in little-endian byte order. The CRC covers only the payload; a torn
// header, a torn payload, and a bit flip anywhere all fail validation,
// and replay truncates at the first invalid frame.
const (
	frameHeaderLen = 8
	payloadLen     = 65 // 4 int64 + 4 float64 + 1 flag byte
	frameLen       = frameHeaderLen + payloadLen

	flagSuccess  = 1 << 0
	flagExplicit = 1 << 1
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64, and a different polynomial than the zip default so WAL
// frames are not accidentally valid zip CRCs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends r's framed wire form to buf and returns the
// extended slice.
func appendFrame(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameLen)...)
	payload := buf[start+frameHeaderLen : start+frameLen]
	le := binary.LittleEndian
	le.PutUint64(payload[0:], uint64(r.JobID))
	le.PutUint64(payload[8:], uint64(int64(r.User)))
	le.PutUint64(payload[16:], uint64(int64(r.App)))
	le.PutUint64(payload[24:], uint64(int64(r.Nodes)))
	le.PutUint64(payload[32:], floatBits(r.ReqMemMB))
	le.PutUint64(payload[40:], floatBits(r.ReqTimeS))
	le.PutUint64(payload[48:], floatBits(r.AllocatedMB))
	le.PutUint64(payload[56:], floatBits(r.UsedMB))
	var flags byte
	if r.Success {
		flags |= flagSuccess
	}
	if r.Explicit {
		flags |= flagExplicit
	}
	payload[64] = flags
	le.PutUint32(buf[start:], payloadLen)
	le.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodePayload parses one validated payload.
func decodePayload(payload []byte) Record {
	le := binary.LittleEndian
	flags := payload[64]
	return Record{
		JobID:       int64(le.Uint64(payload[0:])),
		User:        int(int64(le.Uint64(payload[8:]))),
		App:         int(int64(le.Uint64(payload[16:]))),
		Nodes:       int(int64(le.Uint64(payload[24:]))),
		ReqMemMB:    floatFromBits(le.Uint64(payload[32:])),
		ReqTimeS:    floatFromBits(le.Uint64(payload[40:])),
		AllocatedMB: floatFromBits(le.Uint64(payload[48:])),
		UsedMB:      floatFromBits(le.Uint64(payload[56:])),
		Success:     flags&flagSuccess != 0,
		Explicit:    flags&flagExplicit != 0,
	}
}

// scanRecords walks data frame by frame and returns every valid record
// plus the byte length of the valid prefix. Anything after validLen —
// a torn header, a short payload, a length field that is not this
// version's, or a checksum mismatch — is unreplayable and must be
// truncated by the caller; scanning never fails, it just stops.
func scanRecords(data []byte) (recs []Record, validLen int) {
	le := binary.LittleEndian
	off := 0
	for len(data)-off >= frameHeaderLen {
		n := int(le.Uint32(data[off:]))
		if n != payloadLen {
			break // unknown version or torn/garbage length field
		}
		if len(data)-off-frameHeaderLen < n {
			break // torn payload
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != le.Uint32(data[off+4:]) {
			break // bit flip or torn write inside the payload
		}
		recs = append(recs, decodePayload(payload))
		off += frameHeaderLen + n
	}
	return recs, off
}

// journalHeader opens every journal file, versioning the frame format.
var journalHeader = []byte("OPWALv1\n")

// checkHeader validates a journal file's magic and returns the frame
// region. ok is false when the header is torn (shorter than the magic);
// a present-but-different magic is a hard error, not a torn write.
func checkHeader(data []byte) (frames []byte, ok bool, err error) {
	if len(data) < len(journalHeader) {
		return nil, false, nil
	}
	if string(data[:len(journalHeader)]) != string(journalHeader) {
		return nil, false, fmt.Errorf("wal: bad journal magic %q", data[:len(journalHeader)])
	}
	return data[len(journalHeader):], true, nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
