package wal

import (
	"io"
	"os"
)

// FS is the slice of filesystem the WAL needs. The daemon runs on OSFS;
// the fault-injection harness (internal/faultinject) wraps any FS to
// inject errors, partial writes and SIGKILL-style halts at exact
// operation counts, which is how the crash-matrix tests exercise every
// failure window of the append/rotate/recover protocol.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename: atomic within a directory on POSIX.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable. A rename without a directory sync can still vanish in a
	// crash — the bug the schedd state saver shipped with.
	SyncDir(name string) error
}

// File is the open-file surface the WAL uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync is (*os.File).Sync: flush to stable storage.
	Sync() error
	// Truncate is (*os.File).Truncate: cut a torn tail.
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// SyncDir implements FS by opening the directory and fsyncing it.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
