// Crash-matrix tests: kill the WAL protocol at every single filesystem
// operation (and again with a torn in-flight write) and prove that
// recovery never loses an acked record and always reconstructs exactly
// snapshot + journal replay. These live in an external test package
// because the fault-injection harness imports wal.
package wal_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"overprov/internal/estimate"
	"overprov/internal/faultinject"
	"overprov/internal/trace"
	"overprov/internal/units"
	"overprov/internal/wal"
)

func outcomeID(id int) estimate.Outcome {
	return estimate.Outcome{
		Job: &trace.Job{
			ID: id, User: id % 5, App: id % 3, Nodes: 1,
			ReqMem: units.MemSize(32), ReqTime: units.Seconds(600),
		},
		Allocated: units.MemSize(float64(4 + id%8)),
		Success:   id%3 != 0,
	}
}

// walScript runs a fixed append/rotate workload against a WAL whose
// filesystem is controlled by sched. It returns the JobIDs whose
// RecordOutcome call was acknowledged (returned nil) — the records the
// durability contract covers — and the "trained" list mirroring what an
// estimator fed journal-first would have learned. Errors from the log
// are expected (that is the point) and only affect which appends count
// as acked.
func walScript(dir string, sched *faultinject.Schedule) (acked []int, err error) {
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	var trained []int
	if _, err := l.Recover(
		func(r io.Reader) error { return json.NewDecoder(r).Decode(&trained) },
		func(r wal.Record) error { trained = append(trained, int(r.JobID)); return nil },
	); err != nil {
		return nil, err
	}
	save := func(w io.Writer) error { return json.NewEncoder(w).Encode(trained) }
	// Rotations may fail under injected faults — that is the point of
	// the harness; collect the errors so none is silently dropped (the
	// directory must recover regardless, which recoverAll verifies).
	var rotateErrs []error
	next := 0
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			id := next
			next++
			if err := l.RecordOutcome(outcomeID(id)); err == nil {
				acked = append(acked, id)
				trained = append(trained, id)
			}
		}
	}
	appendN(3)
	if err := l.Rotate(save); err != nil {
		rotateErrs = append(rotateErrs, err) // injected faults are expected here
	}
	appendN(2)
	if err := l.Rotate(save); err != nil {
		rotateErrs = append(rotateErrs, err)
	}
	appendN(2)
	return acked, nil
}

// recoverAll reopens dir with a healthy filesystem and returns the full
// recovered feedback stream: snapshot-covered IDs plus replayed IDs, in
// training order.
func recoverAll(t *testing.T, dir string) ([]int, wal.RecoveryStats) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l.Close()
	var ids []int
	stats, err := l.Recover(
		func(r io.Reader) error { return json.NewDecoder(r).Decode(&ids) },
		func(r wal.Record) error { ids = append(ids, int(r.JobID)); return nil },
	)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return ids, stats
}

// checkNoAckedLoss asserts the durability contract: every acked ID is
// in the recovered stream, in order (the recovered stream may have a
// suffix of un-acked IDs that made it to disk before the crash — extra
// durability is fine, lost acks are not).
func checkNoAckedLoss(t *testing.T, acked, recovered []int) {
	t.Helper()
	if len(recovered) < len(acked) {
		t.Fatalf("recovered %d records < %d acked\nacked:     %v\nrecovered: %v",
			len(recovered), len(acked), acked, recovered)
	}
	for i, id := range acked {
		if recovered[i] != id {
			t.Fatalf("recovered stream diverges at %d: acked %v, recovered %v", i, acked, recovered)
		}
	}
}

// checkDumpEquivalence asserts recovered state == snapshot + replay as
// seen from outside through Dump.
func checkDumpEquivalence(t *testing.T, dir string, recovered []int) {
	t.Helper()
	snap, recs, err := wal.Dump(dir, nil)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	var ids []int
	if snap != nil {
		if err := json.Unmarshal(snap, &ids); err != nil {
			t.Fatalf("snapshot payload: %v", err)
		}
	}
	for _, r := range recs {
		ids = append(ids, int(r.JobID))
	}
	if len(ids) != len(recovered) {
		t.Fatalf("Dump reconstruction %v != recovered %v", ids, recovered)
	}
	for i := range ids {
		if ids[i] != recovered[i] {
			t.Fatalf("Dump reconstruction %v != recovered %v", ids, recovered)
		}
	}
}

// TestCrashMatrix sizes the workload with a probe pass, then replays it
// once per filesystem operation with a SIGKILL-style halt injected at
// exactly that operation.
func TestCrashMatrix(t *testing.T) {
	probe := faultinject.NewSchedule()
	if _, err := walScript(t.TempDir(), probe); err != nil {
		t.Fatalf("probe pass: %v", err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("probe counted only %d fs ops — script too small for a matrix", total)
	}
	t.Logf("crash matrix over %d filesystem operations", total)

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("halt=%d", k), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			sched := faultinject.NewSchedule(faultinject.HaltAt(k))
			acked, err := walScript(dir, sched)
			if err != nil && !sched.Halted() {
				t.Fatalf("script failed without a halt: %v", err)
			}
			recovered, _ := recoverAll(t, dir)
			checkNoAckedLoss(t, acked, recovered)
			checkDumpEquivalence(t, dir, recovered)
		})
	}
}

// TestCrashMatrixTearing reruns the matrix with the kill tearing the
// in-flight write: only its first bytes reach disk, staging exactly the
// torn tail a real power cut leaves.
func TestCrashMatrixTearing(t *testing.T) {
	probe := faultinject.NewSchedule()
	if _, err := walScript(t.TempDir(), probe); err != nil {
		t.Fatalf("probe pass: %v", err)
	}
	total := probe.Ops()
	for k := 1; k <= total; k++ {
		for _, partial := range []int{1, 9} { // mid-header and mid-payload tears
			k, partial := k, partial
			t.Run(fmt.Sprintf("halt=%d,partial=%d", k, partial), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				sched := faultinject.NewSchedule(faultinject.HaltAtTearing(k, partial))
				acked, err := walScript(dir, sched)
				if err != nil && !sched.Halted() {
					t.Fatalf("script failed without a halt: %v", err)
				}
				recovered, _ := recoverAll(t, dir)
				checkNoAckedLoss(t, acked, recovered)
				checkDumpEquivalence(t, dir, recovered)
			})
		}
	}
}

// TestDiskFullSnapshot: every write to a snapshot temp file fails, as
// on a full disk. Rotation must abort cleanly, appends must keep
// working, and recovery must still see every acked record.
func TestDiskFullSnapshot(t *testing.T) {
	dir := t.TempDir()
	enospc := errors.New("no space left on device")
	sched := faultinject.NewSchedule(
		faultinject.Rule{Op: faultinject.OpWrite, Path: "snapshot-", Fault: faultinject.Fault{Err: enospc, Partial: -1}},
	)
	fsys := faultinject.NewFS(nil, sched)
	l, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	var acked []int
	for i := 0; i < 3; i++ {
		if err := l.RecordOutcome(outcomeID(i)); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, i)
	}
	if err := l.Rotate(func(w io.Writer) error {
		_, err := w.Write([]byte("state"))
		return err
	}); err == nil {
		t.Fatal("Rotate must report the failed snapshot")
	}
	// Appends continue on the new journal generation.
	for i := 3; i < 5; i++ {
		if err := l.RecordOutcome(outcomeID(i)); err != nil {
			t.Fatalf("append after failed rotation: %v", err)
		}
		acked = append(acked, i)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, stats := recoverAll(t, dir)
	checkNoAckedLoss(t, acked, recovered)
	if stats.SnapshotSeq != 0 {
		t.Errorf("a failed snapshot must not be loadable, got seq %d", stats.SnapshotSeq)
	}
	if len(recovered) != len(acked) {
		t.Errorf("recovered %d records, want exactly the %d acked", len(recovered), len(acked))
	}
}

// TestEstimatorRecoveryEquivalence is the end-to-end form of the
// invariant with the real estimator: state recovered through
// wal.Log.Recover must be byte-identical to loading the Dump snapshot
// into a fresh estimator and replaying the Dump records.
func TestEstimatorRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	newEst := func() *estimate.ShardedSynchronized {
		est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	est := newEst()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(est.LoadState, nil); err != nil {
		t.Fatal(err)
	}
	// Journal-first training, with a rotation mid-stream.
	for i := 0; i < 40; i++ {
		o := outcomeID(i)
		if err := l.RecordOutcome(o); err != nil {
			t.Fatal(err)
		}
		est.Feedback(o)
		if i == 25 {
			if err := l.Rotate(est.SaveState); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close() // crash-ish: no final rotation

	// Path A: the daemon's recovery.
	recovered := newEst()
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(recovered.LoadState, func(r wal.Record) error {
		recovered.Feedback(r.Outcome())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	// Path B: snapshot + replay via Dump, outside the Log.
	snap, recs, err := wal.Dump(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	manual := newEst()
	if snap != nil {
		if err := manual.LoadState(bytes.NewReader(snap)); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range recs {
		manual.Feedback(r.Outcome())
	}

	stateA, stateB := saveString(t, recovered), saveString(t, manual)
	if stateA != stateB {
		t.Fatalf("recovered state != snapshot + replay\nA: %s\nB: %s", stateA, stateB)
	}
	// And both must equal the live estimator that did the training.
	if live := saveString(t, est); stateA != live {
		t.Fatalf("recovered state != live pre-crash state\nrecovered: %s\nlive: %s", stateA, live)
	}
}

func saveString(t *testing.T, est *estimate.ShardedSynchronized) string {
	t.Helper()
	var sb strings.Builder
	if err := est.SaveState(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
