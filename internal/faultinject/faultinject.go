// Package faultinject is the chaos harness for the serving stack:
// deterministic, seedable wrappers around the estimator, the feedback
// WAL and the filesystem that inject errors, latency, partial writes
// and SIGKILL-style halts on an exact schedule. The crash-matrix tests
// use it to kill the WAL protocol at every single filesystem operation
// and prove recovery holds at each one; the degradation tests use it to
// fail the estimator at serve time and prove the daemon falls back to
// the paper's no-estimation baseline instead of failing requests.
//
// Determinism is the point: a fault schedule is either an explicit list
// of (operation, occurrence) trigger rules or a seeded random process,
// so every chaos failure is replayable from its seed or rule set.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error carried by injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrHalted is returned by every operation after a halting fault fires:
// the moral equivalent of SIGKILL — nothing reaches the wrapped
// implementation anymore.
var ErrHalted = errors.New("faultinject: halted (simulated crash)")

// Fault describes one injected failure.
type Fault struct {
	// Err is returned to the caller; nil injects only latency.
	Err error
	// Latency is slept before the operation (and before Err returns),
	// simulating a slow disk or a slow estimator dependency.
	Latency time.Duration
	// Partial applies to writes: how many bytes of the payload reach
	// the wrapped writer before Err is returned. Negative means none —
	// the write vanishes entirely. It is how torn writes are staged.
	Partial int
	// Halt makes this fault terminal: after it fires, every subsequent
	// operation on the schedule fails with ErrHalted and performs no
	// I/O, simulating process death mid-protocol.
	Halt bool
}

// Rule triggers a Fault at exact occurrences of an operation.
type Rule struct {
	// Op names the operation ("fs.write", "estimate", "wal.append", …).
	// Empty matches every operation — with Nth set, that is "halt at
	// the k-th operation overall", the crash-matrix probe.
	Op string
	// Path restricts the rule to operands containing this substring
	// (file paths for fs ops). Empty matches any operand.
	Path string
	// Nth fires the fault on the Nth matching occurrence only
	// (1-based). Zero fires on every matching occurrence.
	Nth int
	// Fault is what happens when the rule triggers.
	Fault Fault
}

// Schedule decides, per operation, whether a fault fires. Safe for
// concurrent use; occurrence counting is under one mutex so a schedule
// shared by many goroutines still triggers each Nth rule exactly once.
type Schedule struct {
	mu     sync.Mutex
	rules  []Rule
	counts []int // per-rule occurrence counts
	ops    int
	fired  int
	halted bool

	// Random mode: fires fault with probability prob per op, drawn from
	// a seeded generator — deterministic given the seed and call order.
	rng   *rand.Rand
	prob  float64
	rfail Fault
}

// NewSchedule builds a rule-driven schedule.
func NewSchedule(rules ...Rule) *Schedule {
	return &Schedule{rules: rules, counts: make([]int, len(rules))}
}

// NewSeeded builds a schedule that fires f on each operation with the
// given probability, from a generator seeded with seed.
func NewSeeded(seed int64, prob float64, f Fault) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed)), prob: prob, rfail: f}
}

// Check records one occurrence of op and returns the fault to inject,
// or nil. The caller owes the fault its latency and error handling;
// Sleep does both for the common case.
func (s *Schedule) Check(op, path string) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	if s.halted {
		f := Fault{Err: ErrHalted, Partial: -1}
		return &f
	}
	for i := range s.rules {
		r := &s.rules[i]
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		s.counts[i]++
		if r.Nth != 0 && s.counts[i] != r.Nth {
			continue
		}
		s.fired++
		if r.Fault.Halt {
			s.halted = true
		}
		f := r.Fault
		return &f
	}
	if s.rng != nil && s.rng.Float64() < s.prob {
		s.fired++
		if s.rfail.Halt {
			s.halted = true
		}
		f := s.rfail
		return &f
	}
	return nil
}

// Ops returns how many operations the schedule has observed — run a
// probe pass with a no-fault schedule to size a crash matrix.
func (s *Schedule) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Fired returns how many faults have been injected.
func (s *Schedule) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Halted reports whether a halting fault has fired.
func (s *Schedule) Halted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.halted
}

// Sleep serves f's latency; it is safe on a nil fault.
func (f *Fault) Sleep() {
	if f != nil && f.Latency > 0 {
		time.Sleep(f.Latency)
	}
}

// HaltAt is the crash-matrix probe rule: simulate process death at the
// k-th operation overall (1-based), tearing any in-flight write.
func HaltAt(k int) Rule {
	return Rule{Nth: k, Fault: Fault{Err: ErrHalted, Partial: -1, Halt: true}}
}

// HaltAtTearing is HaltAt, but a write in flight at the kill point
// leaves its first partial bytes on disk — the torn-tail case.
func HaltAtTearing(k, partial int) Rule {
	return Rule{Nth: k, Fault: Fault{Err: ErrHalted, Partial: partial, Halt: true}}
}

// FailNth makes the Nth occurrence of op fail with err (once).
func FailNth(op string, n int, err error) Rule {
	if err == nil {
		err = ErrInjected
	}
	return Rule{Op: op, Nth: n, Fault: Fault{Err: err, Partial: -1}}
}

// FailAll makes every occurrence of op fail with err.
func FailAll(op string, err error) Rule {
	if err == nil {
		err = ErrInjected
	}
	return Rule{Op: op, Fault: Fault{Err: err, Partial: -1}}
}

// SlowAll injects latency into every occurrence of op without failing it.
func SlowAll(op string, d time.Duration) Rule {
	return Rule{Op: op, Fault: Fault{Latency: d}}
}

// String summarises the schedule state for test logs.
func (s *Schedule) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("faultinject.Schedule{rules %d, ops %d, fired %d, halted %v}",
		len(s.rules), s.ops, s.fired, s.halted)
}
