package faultinject

import (
	"os"

	"overprov/internal/wal"
)

// Filesystem operation names used by FS. A schedule can target one
// ("fs.sync") or, with an empty Op, all of them (crash matrix).
const (
	OpOpen     = "fs.open"
	OpRename   = "fs.rename"
	OpRemove   = "fs.remove"
	OpReadDir  = "fs.readdir"
	OpMkdirAll = "fs.mkdir"
	OpSyncDir  = "fs.syncdir"
	OpWrite    = "fs.write"
	OpRead     = "fs.read"
	OpSync     = "fs.sync"
	OpClose    = "fs.close"
	OpTruncate = "fs.truncate"
)

// FS wraps a wal.FS with fault injection. After a halting fault fires,
// no operation reaches the inner filesystem — the disk is frozen in
// exactly the state it had at the kill point, which is what makes the
// SIGKILL crash-matrix tests honest.
type FS struct {
	inner wal.FS
	sched *Schedule
}

// NewFS wraps inner (nil selects the real filesystem) with sched.
func NewFS(inner wal.FS, sched *Schedule) *FS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FS{inner: inner, sched: sched}
}

// OpenFile implements wal.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if ft := f.sched.Check(OpOpen, name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return nil, ft.Err
		}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, name: name, sched: f.sched}, nil
}

// Rename implements wal.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if ft := f.sched.Check(OpRename, newpath); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	if ft := f.sched.Check(OpRemove, name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.Remove(name)
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if ft := f.sched.Check(OpReadDir, name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return nil, ft.Err
		}
	}
	return f.inner.ReadDir(name)
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(name string, perm os.FileMode) error {
	if ft := f.sched.Check(OpMkdirAll, name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.MkdirAll(name, perm)
}

// SyncDir implements wal.FS.
func (f *FS) SyncDir(name string) error {
	if ft := f.sched.Check(OpSyncDir, name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.SyncDir(name)
}

// faultFile wraps one open file.
type faultFile struct {
	inner wal.File
	name  string
	sched *Schedule
}

// Write implements wal.File. A faulted write honours Fault.Partial:
// that many payload bytes reach the inner file before the error —
// the torn-write staging used by the crash tests.
func (f *faultFile) Write(p []byte) (int, error) {
	if ft := f.sched.Check(OpWrite, f.name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			n := 0
			if ft.Partial > 0 {
				if ft.Partial < len(p) {
					p = p[:ft.Partial]
				}
				n, _ = f.inner.Write(p)
			}
			return n, ft.Err
		}
	}
	return f.inner.Write(p)
}

// Read implements wal.File.
func (f *faultFile) Read(p []byte) (int, error) {
	if ft := f.sched.Check(OpRead, f.name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return 0, ft.Err
		}
	}
	return f.inner.Read(p)
}

// Sync implements wal.File.
func (f *faultFile) Sync() error {
	if ft := f.sched.Check(OpSync, f.name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.Sync()
}

// Truncate implements wal.File.
func (f *faultFile) Truncate(size int64) error {
	if ft := f.sched.Check(OpTruncate, f.name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return f.inner.Truncate(size)
}

// Close implements wal.File. Close always reaches the inner file —
// leaking descriptors would make the harness flaky — but the injected
// error is still reported.
func (f *faultFile) Close() error {
	err := f.inner.Close()
	if ft := f.sched.Check(OpClose, f.name); ft != nil {
		ft.Sleep()
		if ft.Err != nil {
			return ft.Err
		}
	}
	return err
}
