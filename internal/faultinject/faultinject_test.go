package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overprov/internal/estimate"
	"overprov/internal/trace"
	"overprov/internal/units"
)

func TestRuleMatching(t *testing.T) {
	s := NewSchedule(
		FailNth("fs.write", 2, nil),
		FailAll("estimate", nil),
	)
	if f := s.Check("fs.write", "a"); f != nil {
		t.Error("first write should pass")
	}
	if f := s.Check("fs.read", "a"); f != nil {
		t.Error("reads never match a write rule")
	}
	if f := s.Check("fs.write", "a"); f == nil || !errors.Is(f.Err, ErrInjected) {
		t.Error("second write must fail")
	}
	if f := s.Check("fs.write", "a"); f != nil {
		t.Error("Nth rules fire exactly once")
	}
	for i := 0; i < 3; i++ {
		if f := s.Check("estimate", ""); f == nil {
			t.Error("FailAll must fire every time")
		}
	}
}

func TestPathFilter(t *testing.T) {
	s := NewSchedule(Rule{Op: OpWrite, Path: "snapshot-", Fault: Fault{Err: ErrInjected}})
	if f := s.Check(OpWrite, "/w/journal-00000001.wal"); f != nil {
		t.Error("journal writes must not match a snapshot path rule")
	}
	if f := s.Check(OpWrite, "/w/snapshot-00000002.json.tmp"); f == nil {
		t.Error("snapshot writes must match")
	}
}

func TestHaltSemantics(t *testing.T) {
	s := NewSchedule(HaltAt(3))
	for i := 0; i < 2; i++ {
		if f := s.Check("fs.sync", ""); f != nil {
			t.Fatalf("op %d faulted before the halt point", i+1)
		}
	}
	if s.Halted() {
		t.Fatal("halted before the trigger")
	}
	f := s.Check("fs.sync", "")
	if f == nil || !errors.Is(f.Err, ErrHalted) {
		t.Fatalf("halt did not fire: %v", f)
	}
	if !s.Halted() {
		t.Fatal("Halted() false after the halt fired")
	}
	// Every operation after the halt — any op, any path — fails too.
	for _, op := range []string{"fs.write", "fs.open", "estimate", "anything"} {
		f := s.Check(op, "x")
		if f == nil || !errors.Is(f.Err, ErrHalted) || f.Partial != -1 {
			t.Errorf("op %q survived the halt: %+v", op, f)
		}
	}
	if s.Ops() != 7 || s.Fired() < 1 {
		t.Errorf("counters: ops=%d fired=%d", s.Ops(), s.Fired())
	}
}

func TestSeededDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		s := NewSeeded(seed, 0.3, Fault{Err: ErrInjected})
		var fired []bool
		for i := 0; i < 64; i++ {
			fired = append(fired, s.Check("op", "") != nil)
		}
		return fired
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 64-op pattern (suspicious)")
	}
	any := false
	for _, f := range a {
		any = any || f
	}
	if !any {
		t.Error("probability 0.3 fired zero faults in 64 ops")
	}
}

func TestPartialWriteStaging(t *testing.T) {
	dir := t.TempDir()
	sched := NewSchedule(Rule{Op: OpWrite, Nth: 1, Fault: Fault{Err: ErrInjected, Partial: 3}})
	fsys := NewFS(nil, sched)
	f, err := fsys.OpenFile(filepath.Join(dir, "torn"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want injected", err)
	}
	if n != 3 {
		t.Fatalf("reported %d bytes written, want the partial 3", n)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("on disk %q, want the torn prefix %q", got, "abc")
	}
}

func TestLatencyOnly(t *testing.T) {
	sched := NewSchedule(SlowAll(OpEstimate, 20*time.Millisecond))
	inner, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(inner, sched)
	j := &trace.Job{ID: 1, Nodes: 1, ReqMem: units.MemSize(32), ReqTime: units.Seconds(60)}
	t0 := time.Now()
	if got := est.Estimate(j); !got.Eq(j.ReqMem) {
		t.Errorf("latency-only fault changed the estimate: %v", got)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Errorf("estimate returned in %v, injected latency missing", d)
	}
}

func TestEstimatorErrorPath(t *testing.T) {
	sched := NewSchedule(FailAll(OpEstimate, nil), FailAll(OpFeedback, nil))
	inner, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(inner, sched)
	// The wrapper must still satisfy the concurrency-safe marker, or the
	// server would re-wrap it and serialize the shards behind one mutex.
	var _ estimate.ConcurrencySafe = est
	var _ estimate.Fallible = est

	j := &trace.Job{ID: 1, Nodes: 1, ReqMem: units.MemSize(32), ReqTime: units.Seconds(60)}
	if _, err := est.TryEstimate(j); !errors.Is(err, ErrInjected) {
		t.Errorf("TryEstimate error = %v, want injected", err)
	}
	o := estimate.Outcome{Job: j, Allocated: units.MemSize(32), Success: true}
	if err := est.TryFeedback(o); !errors.Is(err, ErrInjected) {
		t.Errorf("TryFeedback error = %v, want injected", err)
	}
	if inner.NumGroups() != 0 {
		t.Error("failed feedback must not reach the inner estimator")
	}
}

func TestJournalWrapper(t *testing.T) {
	sched := NewSchedule(FailNth(OpWALAppend, 2, nil))
	var appended int
	j := NewJournal(feedbackLogFunc(func(estimate.Outcome) error {
		appended++
		return nil
	}), sched)
	o := estimate.Outcome{Success: true}
	if err := j.RecordOutcome(o); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordOutcome(o); !errors.Is(err, ErrInjected) {
		t.Fatalf("second append error = %v, want injected", err)
	}
	if err := j.RecordOutcome(o); err != nil {
		t.Fatal(err)
	}
	if appended != 2 {
		t.Errorf("inner journal saw %d appends, want 2 (the faulted one must not pass through)", appended)
	}
}

// feedbackLogFunc adapts a function to the FeedbackLog interface.
type feedbackLogFunc func(estimate.Outcome) error

func (f feedbackLogFunc) RecordOutcome(o estimate.Outcome) error { return f(o) }
