package faultinject

import (
	"overprov/internal/estimate"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Estimator operation names.
const (
	OpEstimate = "estimate"
	OpFeedback = "feedback"
)

// WAL operation name used by Journal.
const OpWALAppend = "wal.append"

// Estimator wraps a concurrency-safe estimator with fault injection.
// Embedding promotes the wrapped estimator's concurrency-safety marker,
// so internal/server accepts the wrapper without re-wrapping it in a
// mutex; it also implements estimate.Fallible, which is the error
// surface the server's graceful-degradation path consumes.
//
// Estimate/Feedback (the infallible interface) only inject latency —
// they have no error channel; TryEstimate/TryFeedback inject both.
type Estimator struct {
	estimate.ConcurrencySafe
	sched *Schedule
}

// NewEstimator wraps inner with sched.
func NewEstimator(inner estimate.ConcurrencySafe, sched *Schedule) *Estimator {
	return &Estimator{ConcurrencySafe: inner, sched: sched}
}

// Estimate implements estimate.Estimator, injecting latency only.
func (e *Estimator) Estimate(j *trace.Job) units.MemSize {
	e.sched.Check(OpEstimate, "").Sleep()
	return e.ConcurrencySafe.Estimate(j)
}

// Feedback implements estimate.Estimator, injecting latency only.
func (e *Estimator) Feedback(o estimate.Outcome) {
	e.sched.Check(OpFeedback, "").Sleep()
	e.ConcurrencySafe.Feedback(o)
}

// TryEstimate implements estimate.Fallible.
func (e *Estimator) TryEstimate(j *trace.Job) (units.MemSize, error) {
	if f := e.sched.Check(OpEstimate, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return 0, f.Err
		}
	}
	return e.ConcurrencySafe.Estimate(j), nil
}

// TryFeedback implements estimate.Fallible.
func (e *Estimator) TryFeedback(o estimate.Outcome) error {
	if f := e.sched.Check(OpFeedback, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return f.Err
		}
	}
	e.ConcurrencySafe.Feedback(o)
	return nil
}

// FeedbackLog matches internal/server's journal surface (structurally,
// to keep this package free of a server dependency).
type FeedbackLog interface {
	RecordOutcome(o estimate.Outcome) error
}

// Journal wraps a feedback WAL with fault injection on the append path.
type Journal struct {
	inner FeedbackLog
	sched *Schedule
}

// NewJournal wraps inner with sched.
func NewJournal(inner FeedbackLog, sched *Schedule) *Journal {
	return &Journal{inner: inner, sched: sched}
}

// RecordOutcome implements the server's FeedbackLog.
func (j *Journal) RecordOutcome(o estimate.Outcome) error {
	if f := j.sched.Check(OpWALAppend, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return f.Err
		}
	}
	return j.inner.RecordOutcome(o)
}
