package faultinject

import (
	"overprov/internal/estimate"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Estimator operation names.
const (
	OpEstimate = "estimate"
	OpFeedback = "feedback"
)

// WAL operation name used by Journal.
const OpWALAppend = "wal.append"

// Estimator wraps a concurrency-safe estimator with fault injection.
// Embedding promotes the wrapped estimator's concurrency-safety marker,
// so internal/server accepts the wrapper without re-wrapping it in a
// mutex; it also implements estimate.Fallible, which is the error
// surface the server's graceful-degradation path consumes.
//
// Estimate/Feedback (the infallible interface) only inject latency —
// they have no error channel; TryEstimate/TryFeedback inject both.
type Estimator struct {
	estimate.ConcurrencySafe
	sched *Schedule
}

// NewEstimator wraps inner with sched.
func NewEstimator(inner estimate.ConcurrencySafe, sched *Schedule) *Estimator {
	return &Estimator{ConcurrencySafe: inner, sched: sched}
}

// Estimate implements estimate.Estimator, injecting latency only.
func (e *Estimator) Estimate(j *trace.Job) units.MemSize {
	e.sched.Check(OpEstimate, "").Sleep()
	return e.ConcurrencySafe.Estimate(j)
}

// Feedback implements estimate.Estimator, injecting latency only.
func (e *Estimator) Feedback(o estimate.Outcome) {
	e.sched.Check(OpFeedback, "").Sleep()
	e.ConcurrencySafe.Feedback(o)
}

// TryEstimate implements estimate.Fallible.
func (e *Estimator) TryEstimate(j *trace.Job) (units.MemSize, error) {
	if f := e.sched.Check(OpEstimate, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return 0, f.Err
		}
	}
	return e.ConcurrencySafe.Estimate(j), nil
}

// TryFeedback implements estimate.Fallible.
func (e *Estimator) TryFeedback(o estimate.Outcome) error {
	if f := e.sched.Check(OpFeedback, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return f.Err
		}
	}
	e.ConcurrencySafe.Feedback(o)
	return nil
}

// FeedbackLog matches internal/server's journal surface (structurally,
// to keep this package free of a server dependency).
type FeedbackLog interface {
	RecordOutcome(o estimate.Outcome) error
}

// BatchFeedbackLog is the batch append surface (wal.Log.RecordOutcomes,
// server.BatchFeedbackLog), again matched structurally.
type BatchFeedbackLog interface {
	RecordOutcomes(outcomes []estimate.Outcome) error
}

// Journal wraps a feedback WAL with fault injection on the append path.
type Journal struct {
	inner FeedbackLog
	batch BatchFeedbackLog // inner's batch surface, nil when absent
	sched *Schedule
}

// NewJournal wraps inner with sched. The wrapper exposes a batch
// surface regardless of inner's: a batch against a per-record inner
// journal degrades to a loop, mirroring the server's own fallback.
func NewJournal(inner FeedbackLog, sched *Schedule) *Journal {
	j := &Journal{inner: inner, sched: sched}
	j.batch, _ = inner.(BatchFeedbackLog)
	return j
}

// RecordOutcome implements the server's FeedbackLog.
func (j *Journal) RecordOutcome(o estimate.Outcome) error {
	if f := j.sched.Check(OpWALAppend, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return f.Err
		}
	}
	return j.inner.RecordOutcome(o)
}

// RecordOutcomes implements the server's BatchFeedbackLog: one injection
// point per batch — the batch is one append group with one ticket, so a
// fault here fails the whole group, exactly like a leader error.
func (j *Journal) RecordOutcomes(outcomes []estimate.Outcome) error {
	if f := j.sched.Check(OpWALAppend, ""); f != nil {
		f.Sleep()
		if f.Err != nil {
			return f.Err
		}
	}
	if j.batch != nil {
		return j.batch.RecordOutcomes(outcomes)
	}
	for i := range outcomes {
		if err := j.inner.RecordOutcome(outcomes[i]); err != nil {
			return err
		}
	}
	return nil
}

// SyncStats forwards the inner journal's durability counters when it
// has them, so a fault-injected daemon still reports wal_syncs.
func (j *Journal) SyncStats() (records, syncs uint64) {
	if ss, ok := j.inner.(interface{ SyncStats() (uint64, uint64) }); ok {
		return ss.SyncStats()
	}
	return 0, 0
}
