package sim

import (
	"testing"
	"testing/quick"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/sched"
	"overprov/internal/synth"
	"overprov/internal/trace"
)

// TestAllPoliciesConservation drives random small workloads through
// every scheduling policy with estimation on and checks, per policy:
// every job completes or is rejected, the journal's lifecycle invariants
// hold, occupancy never exceeds the machine, and the cluster drains.
func TestAllPoliciesConservation(t *testing.T) {
	policies := []sched.Policy{
		sched.FCFS{},
		sched.EASY{},
		sched.EASY{Window: 8},
		sched.Conservative{},
		sched.Conservative{Window: 8},
		sched.SJF{},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			err := quick.Check(func(seed uint64) bool {
				cfg := synth.SmallConfig()
				cfg.Seed = seed
				cfg.Jobs = 300
				cfg.Groups = 60
				gen, err := synth.Generate(cfg)
				if err != nil {
					return false
				}
				tr := gen.DropLargerThan(8).CompleteOnly()
				tr.SortBySubmit()
				cl, err := cluster.New(
					cluster.Spec{Nodes: 4, Mem: 24},
					cluster.Spec{Nodes: 4, Mem: 32},
				)
				if err != nil {
					return false
				}
				sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{
					Alpha: 2, Round: cl,
				})
				if err != nil {
					return false
				}
				j := &Journal{}
				res, err := Run(Config{
					Trace: tr, Cluster: cl, Estimator: sa,
					Policy: pol, Journal: j, Seed: seed,
				})
				if err != nil {
					return false
				}
				if res.Completed+res.Rejected != tr.Len() {
					return false
				}
				if err := j.Validate(); err != nil {
					return false
				}
				for _, s := range j.Occupancy() {
					if s.BusyNodes > cl.TotalNodes() || s.BusyNodes < 0 {
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 8})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBackfillingNeverStarvesHead: under EASY and Conservative, a job
// needing the whole machine must not be starved by a stream of small
// backfill candidates — its reservation protects it.
func TestBackfillingNeverStarvesHead(t *testing.T) {
	for _, pol := range []sched.Policy{sched.EASY{}, sched.Conservative{}} {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			jobs := []trace.Job{
				mkJob(1, 0, 100, 4, 16, 8), // occupies half until t=100
				mkJob(2, 1, 50, 8, 16, 8),  // the head: needs everything
			}
			// Small jobs every 10 s, each declaring a 40 s runtime —
			// attractive backfill that would overlap the reservation if
			// started late.
			for i := 0; i < 30; i++ {
				j := mkJob(3+i, float64(2+10*i), 40, 4, 16, 8)
				j.ReqTime = 40
				jobs = append(jobs, j)
			}
			tr := &trace.Trace{Jobs: jobs}
			tr.SortBySubmit()
			res := run(t, Config{
				Trace: tr, Cluster: smallCluster(t),
				Estimator: estimate.Identity{}, Policy: pol, Seed: 1,
			})
			head := res.Records[1]
			if !head.Completed {
				t.Fatal("head never completed")
			}
			// Job 1 releases at t=100; the reservation must start the
			// head then (give slack for one in-flight backfill that
			// started before the head arrived).
			if head.Start > 150 {
				t.Errorf("head started at %v — starved by backfill", head.Start)
			}
		})
	}
}
