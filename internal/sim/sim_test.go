package sim

import (
	"testing"
	"testing/quick"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/sched"
	"overprov/internal/synth"
	"overprov/internal/trace"
	"overprov/internal/units"
)

func mkJob(id int, submit, runtime float64, nodes int, req, used float64) trace.Job {
	return trace.Job{
		ID: id, Submit: units.Seconds(submit), Runtime: units.Seconds(runtime),
		Nodes: nodes, ReqTime: units.Seconds(runtime * 2),
		ReqMem: units.MemSize(req), UsedMem: units.MemSize(used),
		User: 1, App: 1, Status: trace.StatusCompleted,
	}
}

func smallCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 24}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	tr := &trace.Trace{}
	cl := smallCluster(t)
	bad := []Config{
		{Cluster: cl, Estimator: estimate.Identity{}},
		{Trace: tr, Estimator: estimate.Identity{}},
		{Trace: tr, Cluster: cl},
		{Trace: tr, Cluster: cl, Estimator: estimate.Identity{}, SpuriousFailureProb: 1.0},
		{Trace: tr, Cluster: cl, Estimator: estimate.Identity{}, MaxAttempts: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestSingleJobCompletes(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 10, 100, 2, 16, 8)}}
	res := run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{}})
	if res.Completed != 1 || res.Rejected != 0 {
		t.Fatalf("completed/rejected = %d/%d", res.Completed, res.Rejected)
	}
	rec := res.Records[0]
	if rec.Start != 10 || rec.End != 110 {
		t.Errorf("start/end = %v/%v, want 10/110", rec.Start, rec.End)
	}
	if rec.Dispatches != 1 || rec.Lowered {
		t.Errorf("dispatches/lowered = %d/%v", rec.Dispatches, rec.Lowered)
	}
	if res.UsefulNodeSeconds != 200 {
		t.Errorf("useful node-seconds = %g, want 200", res.UsefulNodeSeconds)
	}
	if res.Makespan != 100 {
		t.Errorf("makespan = %v, want 100", res.Makespan)
	}
}

func TestFCFSBlocksStrictly(t *testing.T) {
	// Job 1 takes all 32MB nodes; job 2 needs a 32MB node; job 3 could
	// run on 24MB nodes but strict FCFS must not let it pass job 2.
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 0, 100, 4, 32, 32),
		mkJob(2, 1, 10, 1, 32, 32),
		mkJob(3, 2, 10, 1, 16, 8),
	}}
	res := run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{}})
	r2, r3 := res.Records[1], res.Records[2]
	if r2.Start != 100 {
		t.Errorf("job 2 started at %v, want 100 (after job 1)", r2.Start)
	}
	if r3.Start < r2.Start {
		t.Errorf("FCFS violated: job 3 (start %v) overtook job 2 (start %v)", r3.Start, r2.Start)
	}
}

func TestEASYBackfillsAroundBlockedHead(t *testing.T) {
	// Same workload as above but EASY should let job 3 run during job 1:
	// job 3's estimated end (submit+ReqTime) is before job 2's shadow
	// time, and it fits the idle 24MB pool.
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 0, 100, 4, 32, 32),
		mkJob(2, 1, 10, 1, 32, 32),
		mkJob(3, 2, 10, 1, 16, 8),
	}}
	res := run(t, Config{
		Trace: tr, Cluster: smallCluster(t),
		Estimator: estimate.Identity{}, Policy: sched.EASY{},
	})
	r3 := res.Records[2]
	if r3.Start >= 100 {
		t.Errorf("EASY did not backfill: job 3 started at %v", r3.Start)
	}
}

func TestInsufficientMemoryFailsAndRetries(t *testing.T) {
	// The oracle is wrong here on purpose: force a dispatch at 8MB for a
	// job using 16MB via a stub estimator, then verify the failure and
	// head-of-queue retry semantics.
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 100, 2, 32, 16)}}
	first := true
	est := stubEstimator{
		estimate: func(j *trace.Job) units.MemSize {
			if first {
				first = false
				return 8 // insufficient: allocation lands on 24MB? No — rounds nothing; Allocate(2, 8) takes 24MB nodes.
			}
			return 32
		},
	}
	// With a 24MB pool, an 8MB estimate allocates 24MB nodes and the
	// 16MB usage *fits* — no failure. Use a cluster whose smallest pool
	// is genuinely below the demand.
	cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 8}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Trace: tr, Cluster: cl, Estimator: est, Seed: 9})
	rec := res.Records[0]
	if !rec.Completed {
		t.Fatal("job should eventually complete")
	}
	if rec.ResourceFailures != 1 || rec.Dispatches != 2 {
		t.Errorf("failures/dispatches = %d/%d, want 1/2", rec.ResourceFailures, rec.Dispatches)
	}
	if res.WastedNodeSeconds <= 0 {
		t.Error("failed execution should burn node-seconds")
	}
	if res.ResourceFailures != 1 {
		t.Errorf("global resource failures = %d", res.ResourceFailures)
	}
}

// stubEstimator lets tests force arbitrary estimates.
type stubEstimator struct {
	estimate  func(*trace.Job) units.MemSize
	feedbacks []estimate.Outcome
}

func (s stubEstimator) Name() string { return "stub" }
func (s stubEstimator) Estimate(j *trace.Job) units.MemSize {
	return s.estimate(j)
}
func (s stubEstimator) Feedback(estimate.Outcome) {}

// recordingEstimator captures feedback for plumbing tests.
type recordingEstimator struct {
	inner estimate.Estimator
	got   *[]estimate.Outcome
}

func (r recordingEstimator) Name() string { return "recording" }
func (r recordingEstimator) Estimate(j *trace.Job) units.MemSize {
	return r.inner.Estimate(j)
}
func (r recordingEstimator) Feedback(o estimate.Outcome) {
	*r.got = append(*r.got, o)
	r.inner.Feedback(o)
}

func TestExplicitFeedbackPlumbing(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 50, 1, 16, 5)}}
	var got []estimate.Outcome
	est := recordingEstimator{inner: estimate.Identity{}, got: &got}

	res := run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: est, ExplicitFeedback: true})
	if res.Completed != 1 || len(got) != 1 {
		t.Fatalf("completed=%d feedbacks=%d", res.Completed, len(got))
	}
	o := got[0]
	if !o.Explicit || !o.Used.Eq(5) {
		t.Errorf("explicit outcome = %+v, want Used=5MB", o)
	}
	if !o.Success {
		t.Error("sufficient allocation should succeed")
	}
	if !o.Allocated.Eq(24) {
		t.Errorf("Allocated = %v, want the 24MB best-fit node", o.Allocated)
	}
}

func TestImplicitFeedbackHidesUsage(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 50, 1, 16, 5)}}
	var got []estimate.Outcome
	est := recordingEstimator{inner: estimate.Identity{}, got: &got}
	run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: est})
	if len(got) != 1 || got[0].Explicit || !got[0].Used.IsZero() {
		t.Errorf("implicit outcome leaked usage: %+v", got[0])
	}
}

func TestUnrunnableJobRejected(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 0, 10, 9, 16, 8),  // 9 nodes > 8-node machine
		mkJob(2, 1, 10, 1, 16, 8),  // fine
		mkJob(3, 2, 10, 5, 30, 20), // 5 nodes at 30MB: only 4 eligible
	}}
	res := run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{}})
	if res.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", res.Rejected)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (rejections must not block the queue)", res.Completed)
	}
	if res.Records[0].Completed || res.Records[2].Completed {
		t.Error("rejected jobs marked completed")
	}
}

func TestSpuriousFailuresRetry(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 100, 1, 16, 8)}}
	res := run(t, Config{
		Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{},
		SpuriousFailureProb: 0.9, Seed: 4,
	})
	rec := res.Records[0]
	if !rec.Completed {
		t.Fatal("job must eventually complete despite spurious failures")
	}
	if rec.SpuriousFailures == 0 {
		t.Error("0.9 spurious probability should have produced failures")
	}
	if rec.ResourceFailures != 0 {
		t.Error("no resource failures expected with a sufficient request")
	}
}

func TestMaxAttemptsForcesFullRequest(t *testing.T) {
	// A hostile estimator that under-estimates with a *different* value
	// every time (so the repeated-capacity guard never fires):
	// MaxAttempts must eventually dispatch with the full request.
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 100, 1, 32, 30)}}
	n := 0.0
	est := stubEstimator{estimate: func(j *trace.Job) units.MemSize {
		n += 0.1
		return units.MemSize(1 + n)
	}}
	cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 8}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Trace: tr, Cluster: cl, Estimator: est, MaxAttempts: 5, Seed: 2})
	rec := res.Records[0]
	if !rec.Completed {
		t.Fatal("progress guarantee violated")
	}
	if rec.Dispatches != 6 { // 5 failures + 1 forced success
		t.Errorf("dispatches = %d, want 6", rec.Dispatches)
	}
}

func TestRetryNeverRepeatsFailedCapacity(t *testing.T) {
	// An estimator frozen at an insufficient capacity (Algorithm 1 with
	// a damped learning rate and within-group spread): the engine must
	// not re-run the job at the capacity that just failed, but fall
	// back to the user's request on the retry.
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 100, 1, 32, 30)}}
	est := stubEstimator{estimate: func(j *trace.Job) units.MemSize { return 8 }}
	cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 8}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Trace: tr, Cluster: cl, Estimator: est, Seed: 2})
	rec := res.Records[0]
	if !rec.Completed {
		t.Fatal("job must complete")
	}
	if rec.Dispatches != 2 || rec.ResourceFailures != 1 {
		t.Errorf("dispatches/failures = %d/%d, want 2/1 (fail once, then full request)",
			rec.Dispatches, rec.ResourceFailures)
	}
	if !rec.FinalAlloc.Eq(32) {
		t.Errorf("final allocation = %v, want the full 32MB request", rec.FinalAlloc)
	}
}

func TestDeterminism(t *testing.T) {
	gen, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.DropLargerThan(8).CompleteOnly().Head(500)
	runOnce := func() *Result {
		cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 24}, cluster.Spec{Nodes: 4, Mem: 32})
		if err != nil {
			t.Fatal(err)
		}
		sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl})
		if err != nil {
			t.Fatal(err)
		}
		return run(t, Config{Trace: tr, Cluster: cl, Estimator: sa, Seed: 17})
	}
	a, b := runOnce(), runOnce()
	if a.Completed != b.Completed || a.Dispatches != b.Dispatches ||
		a.UsefulNodeSeconds != b.UsefulNodeSeconds || a.Makespan != b.Makespan {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Records {
		if a.Records[i].End != b.Records[i].End {
			t.Fatalf("record %d end diverged", i)
		}
	}
}

// TestConservationProperty: for random small workloads, jobs in =
// completed + rejected, every completed job ran within its submit..end
// window, and the cluster ends fully free (checked inside Run).
func TestConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		cfg := synth.SmallConfig()
		cfg.Seed = seed
		cfg.Jobs = 200 + int(nRaw)
		cfg.Groups = 50
		gen, err := synth.Generate(cfg)
		if err != nil {
			return false
		}
		tr := gen.DropLargerThan(8).CompleteOnly()
		tr.SortBySubmit()
		cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 24}, cluster.Spec{Nodes: 4, Mem: 32})
		if err != nil {
			return false
		}
		sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl})
		if err != nil {
			return false
		}
		res, err := Run(Config{Trace: tr, Cluster: cl, Estimator: sa, Seed: seed})
		if err != nil {
			return false
		}
		if res.Completed+res.Rejected != tr.Len() {
			return false
		}
		for i := range res.Records {
			rec := &res.Records[i]
			if !rec.Completed {
				continue
			}
			if rec.Start < rec.Submit || rec.End < rec.Start {
				return false
			}
			// The final successful execution lasts exactly the runtime.
			if d := (rec.End - rec.Start) - rec.Job.Runtime; d < 0 || d.Sec() > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

func TestTieBreakTerminationBeforeArrival(t *testing.T) {
	// Job 1 ends exactly when job 2 arrives; job 2 needs job 1's nodes
	// and must start immediately (terminations processed first).
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 0, 100, 8, 16, 8),
		mkJob(2, 100, 10, 8, 16, 8),
	}}
	res := run(t, Config{Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{}})
	if res.Records[1].Start != 100 {
		t.Errorf("job 2 started at %v, want 100", res.Records[1].Start)
	}
}

func TestSJFOrdersbyRequestedTime(t *testing.T) {
	// All three jobs queue behind job 0; SJF must start the shortest
	// (by ReqTime) first once nodes free up.
	jobs := []trace.Job{
		mkJob(1, 0, 100, 8, 16, 8), // occupies everything
		mkJob(2, 1, 80, 8, 16, 8),  // ReqTime 160
		mkJob(3, 2, 10, 8, 16, 8),  // ReqTime 20 ← shortest
		mkJob(4, 3, 40, 8, 16, 8),  // ReqTime 80
	}
	tr := &trace.Trace{Jobs: jobs}
	res := run(t, Config{
		Trace: tr, Cluster: smallCluster(t),
		Estimator: estimate.Identity{}, Policy: sched.SJF{},
	})
	if res.Records[2].Start != 100 {
		t.Errorf("shortest job started at %v, want 100", res.Records[2].Start)
	}
	if res.Records[1].Start < res.Records[3].Start {
		t.Error("SJF ran the longest queued job before a shorter one")
	}
}

func TestRuntimeEstimatorWiring(t *testing.T) {
	// With a learned runtime predictor configured, the engine must (a)
	// feed completed runtimes back, and (b) expose predictions to the
	// policies instead of ReqTime.
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 0, 100, 1, 16, 8),
		mkJob(2, 200, 100, 1, 16, 8), // same group: prediction available
	}}
	// Wildly inflated user estimates.
	for i := range tr.Jobs {
		tr.Jobs[i].ReqTime = 10000
	}
	rt, err := estimate.NewTsafrirRuntime(estimate.TsafrirRuntimeConfig{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{
		Trace: tr, Cluster: smallCluster(t), Estimator: estimate.Identity{},
		Policy: sched.EASY{}, Runtime: rt,
	})
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if rt.NumGroups() != 1 {
		t.Fatalf("runtime groups = %d, want 1", rt.NumGroups())
	}
	// The group learned the true 100s runtime.
	if got := rt.EstimateRuntime(&tr.Jobs[1]); got != 100 {
		t.Errorf("learned runtime = %v, want 100", got)
	}
}
