package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/sched"
	"overprov/internal/synth"
)

// The cross-policy equivalence suite pins the engine's observable
// behaviour to goldens captured from the pre-optimization engine (the
// seed commit's event loop, before the dirty-flag/ring-queue/scratch
// -buffer overhaul). Any hot-path change that alters a single dispatch
// decision, failure draw, or counter shows up as a DeepEqual diff here.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test ./internal/sim -run TestEngineEquivalence -update-golden

var updateGolden = flag.Bool("update-golden", false,
	"rewrite results/golden/*.json from the current engine instead of comparing")

// goldenDir is where the committed goldens live, relative to this
// package's directory.
const goldenDir = "../../results/golden"

type equivCase struct {
	policy sched.Policy
	seed   uint64
	load   float64
}

func equivCases() []equivCase {
	var cases []equivCase
	for _, pol := range []sched.Policy{sched.FCFS{}, sched.EASY{}, sched.Conservative{}} {
		for _, seed := range []uint64{1, 2, 3} {
			for _, load := range []float64{0.75, 1.25} {
				cases = append(cases, equivCase{policy: pol, seed: seed, load: load})
			}
		}
	}
	return cases
}

func (c equivCase) name() string {
	pol := strings.SplitN(c.policy.Name(), "-", 2)[0]
	return fmt.Sprintf("%s_s%d_l%03.0f", pol, c.seed, c.load*100)
}

// equivRun executes one configuration. Spurious failures are on so the
// run exercises the RNG, the retry path, and the head-of-queue requeue.
func (c equivCase) run(t *testing.T) *Result {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Seed = c.seed
	cfg.Jobs = 240
	cfg.Groups = 60
	gen, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.DropLargerThan(32).CompleteOnly()
	tr.SortBySubmit()
	cl, err := cluster.New(cluster.Spec{Nodes: 32, Mem: 24}, cluster.Spec{Nodes: 32, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleToOfferedLoad(c.load, cl.TotalNodes())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl})
	if err != nil {
		t.Fatal(err)
	}
	return run(t, Config{
		Trace:               scaled,
		Cluster:             cl,
		Estimator:           sa,
		Policy:              c.policy,
		SpuriousFailureProb: 0.2,
		Seed:                c.seed,
	})
}

// TestEngineEquivalence replays every (policy, seed, load) cell and
// requires reflect.DeepEqual with the committed golden. Both sides pass
// through a JSON round trip so the comparison covers exactly the
// exported, serialisable behaviour (encoding/json round-trips float64
// bit-exactly).
func TestEngineEquivalence(t *testing.T) {
	for _, c := range equivCases() {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			res := c.run(t)
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(goldenDir, "equiv_"+c.name()+".json")
			if *updateGolden {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			goldenRaw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to capture): %v", err)
			}
			var got, want Result
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(goldenRaw, &want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&got, &want) {
				t.Errorf("engine diverged from pre-optimization golden %s:\n got: completed=%d rejected=%d dispatches=%d resfail=%d spurious=%d lowered=%d makespan=%v useful=%g wasted=%g\nwant: completed=%d rejected=%d dispatches=%d resfail=%d spurious=%d lowered=%d makespan=%v useful=%g wasted=%g",
					path,
					got.Completed, got.Rejected, got.Dispatches, got.ResourceFailures, got.SpuriousFailures, got.LoweredDispatches, got.Makespan, got.UsefulNodeSeconds, got.WastedNodeSeconds,
					want.Completed, want.Rejected, want.Dispatches, want.ResourceFailures, want.SpuriousFailures, want.LoweredDispatches, want.Makespan, want.UsefulNodeSeconds, want.WastedNodeSeconds)
				for i := range got.Records {
					if i < len(want.Records) && !reflect.DeepEqual(got.Records[i], want.Records[i]) {
						t.Errorf("first diverging record %d:\n got %+v\nwant %+v", i, got.Records[i], want.Records[i])
						break
					}
				}
			}
		})
	}
}
