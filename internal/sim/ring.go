package sim

// ringQueue is the engine's wait queue: a power-of-two ring deque of
// *jobState supporting O(1) amortised pushBack (arrivals), pushFront
// (failed jobs returning to the head, per the paper) and popFront. It
// replaces the previous `append`-prepend / `queue[1:]` re-slicing, which
// made every retry O(n) and pinned dequeued jobs in the backing array.
// Vacated slots are nilled and the buffer shrinks when occupancy drops
// to a quarter, so the queue releases memory after load spikes.
//
// The ring is owned by the engine's single driving goroutine; it is not
// safe for concurrent use and deliberately has no lock.
type ringQueue struct {
	buf  []*jobState // len(buf) is always a power of two (or zero)
	head int
	n    int
}

const minRingCap = 16

func (q *ringQueue) len() int { return q.n }

// at returns the i-th queued job (0 = head). i must be < len.
func (q *ringQueue) at(i int) *jobState {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

func (q *ringQueue) pushBack(js *jobState) {
	q.growIfFull()
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = js
	q.n++
}

func (q *ringQueue) pushFront(js *jobState) {
	q.growIfFull()
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = js
	q.n++
}

func (q *ringQueue) popFront() *jobState {
	js := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.maybeShrink()
	return js
}

// compact removes the entries among the first visible positions for
// which drop returns true, preserving the relative order of survivors
// (the same order the previous `kept := queue[:0]` filter produced).
func (q *ringQueue) compact(visible int, drop func(i int) bool) {
	w := 0
	for i := 0; i < visible; i++ {
		if drop(i) {
			continue
		}
		if w != i {
			q.buf[(q.head+w)&(len(q.buf)-1)] = q.at(i)
		}
		w++
	}
	if w == visible {
		return
	}
	// Slide the unexamined tail down and nil the vacated slots.
	for i := visible; i < q.n; i++ {
		q.buf[(q.head+w)&(len(q.buf)-1)] = q.at(i)
		w++
	}
	for i := w; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = nil
	}
	q.n = w
	q.maybeShrink()
}

func (q *ringQueue) growIfFull() {
	if q.n < len(q.buf) {
		return
	}
	newCap := minRingCap
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	q.resize(newCap)
}

// maybeShrink halves the buffer when three quarters of it sit idle, so
// a drained queue hands its spike-sized backing array back to the GC.
func (q *ringQueue) maybeShrink() {
	if len(q.buf) > minRingCap && q.n <= len(q.buf)/4 {
		q.resize(len(q.buf) / 2)
	}
}

func (q *ringQueue) resize(newCap int) {
	nb := make([]*jobState, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf = nb
	q.head = 0
}
