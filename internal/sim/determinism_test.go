package sim

import (
	"reflect"
	"testing"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/synth"
)

// The detrand analyzer guarantees no code path in sim/synth/estimate
// can reach ambient randomness or the wall clock; these tests pin the
// complementary runtime half of the determinism invariant: identical
// seeds replay bit-identically, and the seed actually matters.

func detCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	// The paper's Figure 5–7 machine: big enough for the synthetic
	// workload's full-machine jobs (smaller clusters reject everything
	// and the RNG is never consulted).
	c, err := cluster.New(cluster.Spec{Nodes: 512, Mem: 32}, cluster.Spec{Nodes: 512, Mem: 24})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func detRun(t *testing.T, seed uint64) *Result {
	t.Helper()
	// Share one generated trace across runs: Records hold *trace.Job
	// pointers, and the engine must never mutate the jobs themselves.
	cfg := synth.SmallConfig()
	cfg.Seed = 7
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return run(t, Config{
		Trace:     tr,
		Cluster:   detCluster(t),
		Estimator: sa,
		// Spurious failures make the sim seed load-bearing: failure
		// points are drawn from the run's RNG.
		SpuriousFailureProb: 0.3,
		Seed:                seed,
	})
}

// TestSameSeedReplaysIdentically is the replay-determinism regression
// gate: two full simulations from the same seeds must agree on every
// record, counter and metric.
func TestSameSeedReplaysIdentically(t *testing.T) {
	a := detRun(t, 42)
	b := detRun(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\nrun1: completed=%d failed=%d makespan=%v wasted=%g\nrun2: completed=%d failed=%d makespan=%v wasted=%g",
			a.Completed, a.ResourceFailures, a.Makespan, a.WastedNodeSeconds,
			b.Completed, b.ResourceFailures, b.Makespan, b.WastedNodeSeconds)
	}
}

// TestDifferentSeedDiverges guards the test above against vacuity: if
// the seed stopped reaching the failure-point sampling, same-seed
// equality would hold trivially.
func TestDifferentSeedDiverges(t *testing.T) {
	a := detRun(t, 42)
	b := detRun(t, 43)
	if reflect.DeepEqual(a, b) {
		t.Fatal("runs with different seeds produced identical results; the seed no longer reaches the RNG")
	}
}

// TestSynthGenerationIsSeedDeterministic pins the workload generator:
// the same synth seed must yield an identical job stream.
func TestSynthGenerationIsSeedDeterministic(t *testing.T) {
	gen := func(seed uint64) []float64 {
		cfg := synth.SmallConfig()
		cfg.Seed = seed
		tr, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 4*len(tr.Jobs))
		for _, j := range tr.Jobs {
			out = append(out, j.Submit.Sec(), j.ReqMem.MBf(), j.UsedMem.MBf(), j.Runtime.Sec())
		}
		return out
	}
	if !reflect.DeepEqual(gen(11), gen(11)) {
		t.Error("same-seed synthetic traces differ")
	}
	if reflect.DeepEqual(gen(11), gen(12)) {
		t.Error("different-seed synthetic traces are identical")
	}
}
