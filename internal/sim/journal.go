package sim

import (
	"fmt"
	"io"

	"overprov/internal/units"
)

// EventKind classifies a journal entry.
type EventKind int

// Journal event kinds, in lifecycle order.
const (
	EventArrival EventKind = iota
	EventDispatch
	EventComplete
	EventResourceFail
	EventSpuriousFail
	EventReject
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventArrival:
		return "arrival"
	case EventDispatch:
		return "dispatch"
	case EventComplete:
		return "complete"
	case EventResourceFail:
		return "resource-fail"
	case EventSpuriousFail:
		return "spurious-fail"
	case EventReject:
		return "reject"
	default:
		return "unknown"
	}
}

// Event is one journal entry: what happened to which job, when, and
// with what capacities.
type Event struct {
	At   units.Seconds
	Kind EventKind
	// JobID is the trace job ID.
	JobID int
	// Nodes is the job's node count.
	Nodes int
	// Estimate is the capacity the matcher used (dispatch and failure
	// events); Allocated is the smallest per-node capacity actually
	// granted.
	Estimate, Allocated units.MemSize
}

// Journal collects the event stream of a run when enabled via
// Config.Journal. The zero value is ready to use.
type Journal struct {
	Events []Event
}

// add appends an entry.
func (j *Journal) add(e Event) { j.Events = append(j.Events, e) }

// Len returns the number of recorded events.
func (j *Journal) Len() int { return len(j.Events) }

// ForJob returns the job's events in order.
func (j *Journal) ForJob(jobID int) []Event {
	var out []Event
	for _, e := range j.Events {
		if e.JobID == jobID {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the kind were recorded.
func (j *Journal) Count(kind EventKind) int {
	n := 0
	for _, e := range j.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriteTo dumps the journal as one line per event:
//
//	<time>s <kind> job=<id> nodes=<n> est=<mem> alloc=<mem>
func (j *Journal) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range j.Events {
		n, err := fmt.Fprintf(w, "%.1fs %s job=%d nodes=%d est=%v alloc=%v\n",
			e.At.Sec(), e.Kind, e.JobID, e.Nodes, e.Estimate, e.Allocated)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Validate checks the journal's lifecycle invariants: every dispatch is
// preceded by an arrival, every completion/failure by a dispatch, and
// event times never go backwards. It returns the first violation.
func (j *Journal) Validate() error {
	type state int
	const (
		unseen state = iota
		queued
		running
		done
	)
	states := map[int]state{}
	var last units.Seconds
	for i, e := range j.Events {
		if e.At < last {
			return fmt.Errorf("sim: journal time went backwards at entry %d (%v after %v)",
				i, e.At, last)
		}
		last = e.At
		s := states[e.JobID]
		switch e.Kind {
		case EventArrival:
			if s != unseen {
				return fmt.Errorf("sim: job %d arrived twice", e.JobID)
			}
			states[e.JobID] = queued
		case EventDispatch:
			if s != queued {
				return fmt.Errorf("sim: job %d dispatched while %v", e.JobID, s)
			}
			states[e.JobID] = running
		case EventComplete:
			if s != running {
				return fmt.Errorf("sim: job %d completed while not running", e.JobID)
			}
			states[e.JobID] = done
		case EventResourceFail, EventSpuriousFail:
			if s != running {
				return fmt.Errorf("sim: job %d failed while not running", e.JobID)
			}
			states[e.JobID] = queued
		case EventReject:
			if s != queued {
				return fmt.Errorf("sim: job %d rejected while %v", e.JobID, s)
			}
			states[e.JobID] = done
		}
	}
	return nil
}

// OccupancySample is one point of the cluster's utilization time series.
type OccupancySample struct {
	At units.Seconds
	// BusyNodes counts allocated nodes immediately after the event at
	// At was processed.
	BusyNodes int
	// QueueLen is the wait-queue length at the same instant.
	QueueLen int
}

// Occupancy reconstructs the busy-node and queue-length time series from
// a journal, given the cluster's total node count. One sample is emitted
// per state-changing event.
func (j *Journal) Occupancy() []OccupancySample {
	type jobInfo struct{ nodes int }
	running := map[int]jobInfo{}
	queued := map[int]bool{}
	busy := 0
	var out []OccupancySample
	for _, e := range j.Events {
		switch e.Kind {
		case EventArrival:
			queued[e.JobID] = true
		case EventDispatch:
			delete(queued, e.JobID)
			running[e.JobID] = jobInfo{nodes: e.Nodes}
			busy += e.Nodes
		case EventComplete:
			busy -= running[e.JobID].nodes
			delete(running, e.JobID)
		case EventResourceFail, EventSpuriousFail:
			busy -= running[e.JobID].nodes
			delete(running, e.JobID)
			queued[e.JobID] = true
		case EventReject:
			delete(queued, e.JobID)
		}
		out = append(out, OccupancySample{At: e.At, BusyNodes: busy, QueueLen: len(queued)})
	}
	return out
}

// PeakBusyNodes returns the maximum simultaneous node occupancy in the
// journal.
func (j *Journal) PeakBusyNodes() int {
	peak := 0
	for _, s := range j.Occupancy() {
		if s.BusyNodes > peak {
			peak = s.BusyNodes
		}
	}
	return peak
}
