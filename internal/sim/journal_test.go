package sim

import (
	"strings"
	"testing"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/synth"
	"overprov/internal/trace"
	"overprov/internal/units"
)

func journalRun(t *testing.T, jobs []trace.Job, cfgMut func(*Config)) (*Result, *Journal) {
	t.Helper()
	j := &Journal{}
	cfg := Config{
		Trace:     &trace.Trace{Jobs: jobs},
		Cluster:   smallCluster(t),
		Estimator: estimate.Identity{},
		Journal:   j,
		Seed:      5,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, j
}

func TestJournalLifecycle(t *testing.T) {
	_, j := journalRun(t, []trace.Job{mkJob(1, 0, 100, 2, 16, 8)}, nil)
	kinds := make([]EventKind, 0, j.Len())
	for _, e := range j.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventArrival, EventDispatch, EventComplete}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecordsFailureAndRetry(t *testing.T) {
	// Force one resource failure via a stub estimator stuck at 8MB on a
	// job using 30MB (cluster smallest pool is 24MB → allocate 24MB →
	// fail), then retry at the request.
	first := true
	est := stubEstimator{estimate: func(*trace.Job) units.MemSize {
		if first {
			first = false
			return 8
		}
		return 32
	}}
	j := &Journal{}
	cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 8}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Trace:     &trace.Trace{Jobs: []trace.Job{mkJob(1, 0, 100, 1, 32, 30)}},
		Cluster:   cl,
		Estimator: est,
		Journal:   j,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Count(EventResourceFail) != 1 {
		t.Errorf("resource failures journalled = %d, want 1", j.Count(EventResourceFail))
	}
	if j.Count(EventDispatch) != 2 {
		t.Errorf("dispatches journalled = %d, want 2", j.Count(EventDispatch))
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-job extraction keeps order.
	evs := j.ForJob(1)
	if len(evs) != j.Len() {
		t.Errorf("ForJob(1) = %d events, want all %d", len(evs), j.Len())
	}
}

func TestJournalRejection(t *testing.T) {
	_, j := journalRun(t, []trace.Job{mkJob(1, 0, 10, 99, 16, 8)}, nil)
	if j.Count(EventReject) != 1 {
		t.Errorf("rejects = %d, want 1", j.Count(EventReject))
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalSpuriousFailKind(t *testing.T) {
	_, j := journalRun(t, []trace.Job{mkJob(1, 0, 100, 1, 16, 8)}, func(c *Config) {
		c.SpuriousFailureProb = 0.9
	})
	if j.Count(EventSpuriousFail) == 0 {
		t.Error("expected spurious failures journalled")
	}
	if j.Count(EventResourceFail) != 0 {
		t.Error("no resource failures expected")
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalOccupancy(t *testing.T) {
	// Two 4-node jobs overlap: peak busy = 8.
	_, j := journalRun(t, []trace.Job{
		mkJob(1, 0, 100, 4, 16, 8),
		mkJob(2, 10, 100, 4, 16, 8),
	}, nil)
	if peak := j.PeakBusyNodes(); peak != 8 {
		t.Errorf("peak busy = %d, want 8", peak)
	}
	samples := j.Occupancy()
	last := samples[len(samples)-1]
	if last.BusyNodes != 0 || last.QueueLen != 0 {
		t.Errorf("final sample = %+v, want a drained cluster", last)
	}
}

func TestJournalQueueLength(t *testing.T) {
	// Job 1 takes everything; jobs 2 and 3 queue behind it.
	_, j := journalRun(t, []trace.Job{
		mkJob(1, 0, 100, 8, 16, 8),
		mkJob(2, 1, 10, 8, 16, 8),
		mkJob(3, 2, 10, 8, 16, 8),
	}, nil)
	peakQueue := 0
	for _, s := range j.Occupancy() {
		if s.QueueLen > peakQueue {
			peakQueue = s.QueueLen
		}
	}
	if peakQueue != 2 {
		t.Errorf("peak queue = %d, want 2", peakQueue)
	}
}

func TestJournalWriteTo(t *testing.T) {
	_, j := journalRun(t, []trace.Job{mkJob(1, 0, 100, 2, 16, 8)}, nil)
	var sb strings.Builder
	if _, err := j.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"arrival", "dispatch", "complete", "job=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("journal dump missing %q:\n%s", want, out)
		}
	}
}

func TestJournalValidateOnRealWorkload(t *testing.T) {
	gen, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.DropLargerThan(8).CompleteOnly().Head(400)
	cl, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 24}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl})
	if err != nil {
		t.Fatal(err)
	}
	j := &Journal{}
	if _, err := Run(Config{Trace: tr, Cluster: cl, Estimator: sa, Journal: j, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("journal invariants broken on a real workload: %v", err)
	}
	// Busy nodes never exceed the machine.
	for _, s := range j.Occupancy() {
		if s.BusyNodes > cl.TotalNodes() {
			t.Fatalf("occupancy %d exceeds %d nodes", s.BusyNodes, cl.TotalNodes())
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventArrival, EventDispatch, EventComplete,
		EventResourceFail, EventSpuriousFail, EventReject, EventKind(99)}
	want := []string{"arrival", "dispatch", "complete",
		"resource-fail", "spurious-fail", "reject", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}
