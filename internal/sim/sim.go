// Package sim is the trace-driven, discrete-event cluster simulator the
// reproduction's experiments run on. It wires together the paper's
// Figure 2 loop: jobs arrive, the estimator predicts their actual
// requirements, the scheduler matches the *estimated* requirement against
// the heterogeneous cluster, and completion feedback (implicit or
// explicit) flows back into the estimator.
//
// Failure semantics follow §3.1 exactly: a job launched on nodes with
// less memory than it actually uses fails after a time drawn uniformly
// in (0, runtime), occupies its nodes until then, and returns to the
// head of the queue. There is no preemption.
//
// # Hot path
//
// The engine is optimised for per-event incremental work (see DESIGN.md
// § Performance): scheduling rounds are gated on a dirty flag, the wait
// queue is a ring deque, the running set is index-tracked for O(1)
// removal, termination events are pooled, and the policy view (queue
// snapshot, running list, and its ExpectedEnd-ascending sort) lives in
// scratch buffers reused across rounds. All of this state is mutated
// from the single goroutine that owns the run — there is deliberately
// no mutex here (lockcheck: no guarded fields), and determinism is
// pinned by determinism_test.go plus the golden equivalence suite in
// equivalence_test.go.
package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/sched"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Config describes one simulation run.
type Config struct {
	// Trace supplies the jobs, sorted by submission time.
	Trace *trace.Trace
	// Cluster is the machine; it is mutated during the run, so pass a
	// fresh instance per run.
	Cluster *cluster.Cluster
	// Estimator predicts actual job requirements. estimate.Identity{}
	// reproduces classical matching (no estimation).
	//
	// Estimate is treated as a pure query of the estimator's state: the
	// engine caches estimates between Feedback calls and skips
	// scheduling rounds whose estimates provably cannot have changed.
	// All in-tree estimators satisfy this except Reinforcement, whose
	// ε-greedy Estimate consumes its own RNG — runs stay
	// seed-deterministic, but the arm-draw sequence depends on how
	// often the engine asks.
	Estimator estimate.Estimator
	// Policy picks jobs to dispatch; defaults to strict FCFS, the
	// paper's policy.
	Policy sched.Policy
	// ExplicitFeedback controls whether Outcome.Used is reported to the
	// estimator. The paper's simulations assume implicit feedback (the
	// general case).
	ExplicitFeedback bool
	// SpuriousFailureProb injects resource-unrelated failures (buggy
	// programs, faulty machines — §2.1's false positives) with the given
	// per-dispatch probability.
	SpuriousFailureProb float64
	// MaxAttempts caps dispatch attempts per job; beyond it the job is
	// dispatched with its full request, guaranteeing progress even under
	// adversarial estimates. 0 selects the default of 50.
	MaxAttempts int
	// MaxVisibleQueue bounds how many queued jobs a policy sees per
	// scheduling round (real schedulers window their queues too);
	// 0 selects the default of 1024. FCFS ignores it.
	MaxVisibleQueue int
	// Runtime optionally replaces the user's runtime estimates with
	// learned predictions for the scheduler's reservation and backfill
	// arithmetic (Tsafrir et al., the paper's related work [18]). Nil
	// keeps the user's ReqTime. Predictions never affect job execution —
	// only planning. Like Estimator.Estimate, EstimateRuntime must be a
	// pure query: the engine caches predictions between FeedbackRuntime
	// calls.
	Runtime estimate.RuntimeEstimator
	// Journal, when non-nil, receives the run's full event stream
	// (arrivals, dispatches, completions, failures, rejections) for
	// debugging and occupancy analysis.
	Journal *Journal
	// Seed drives failure times and spurious failures.
	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Trace == nil:
		return fmt.Errorf("sim: Config.Trace is nil")
	case c.Cluster == nil:
		return fmt.Errorf("sim: Config.Cluster is nil")
	case c.Estimator == nil:
		return fmt.Errorf("sim: Config.Estimator is nil")
	case c.SpuriousFailureProb < 0 || c.SpuriousFailureProb >= 1:
		return fmt.Errorf("sim: SpuriousFailureProb %g outside [0,1)", c.SpuriousFailureProb)
	case c.MaxAttempts < 0:
		return fmt.Errorf("sim: negative MaxAttempts %d", c.MaxAttempts)
	}
	return nil
}

// JobRecord is the audit trail of one job across the whole run.
type JobRecord struct {
	Job *trace.Job
	// Submit is the job's arrival time (copied for convenience).
	Submit units.Seconds
	// Start is when the job's final, successful execution began.
	Start units.Seconds
	// End is when the job finally completed.
	End units.Seconds
	// Dispatches counts execution attempts (1 = ran cleanly first try).
	Dispatches int
	// ResourceFailures counts executions that died from insufficient
	// allocated memory.
	ResourceFailures int
	// SpuriousFailures counts injected resource-unrelated failures.
	SpuriousFailures int
	// Lowered reports whether any dispatch used an estimate strictly
	// below the user's request.
	Lowered bool
	// FinalAlloc is the per-node capacity of the successful execution's
	// smallest node; FinalEst is the matching estimate (E′) that
	// execution was dispatched with.
	FinalAlloc, FinalEst units.MemSize
	// Completed is false for rejected jobs (jobs that can never fit the
	// cluster).
	Completed bool
}

// Result aggregates a finished run.
type Result struct {
	// Records holds one entry per trace job, in trace order.
	Records []JobRecord
	// Makespan is the time from the first submission to the last event.
	Makespan units.Seconds
	// FirstSubmit anchors the makespan.
	FirstSubmit units.Seconds
	// TotalNodes echoes the cluster size.
	TotalNodes int
	// UsefulNodeSeconds counts node-seconds spent on executions that
	// completed; WastedNodeSeconds counts node-seconds consumed by
	// failed executions.
	UsefulNodeSeconds, WastedNodeSeconds float64
	// RequestedMemSeconds is Σ requested-memory × nodes × elapsed over
	// successful executions; MatchedMemSeconds is the same with the
	// estimate the matcher used (E′ of Algorithm 1); UsedMemSeconds
	// with the true consumption. Matched < Requested is the matching
	// capacity the estimator reclaimed; Matched − Used is the residual
	// over-allocation.
	RequestedMemSeconds, MatchedMemSeconds, UsedMemSeconds float64
	// Dispatches counts all execution attempts; ResourceFailures and
	// SpuriousFailures divide the failed ones; LoweredDispatches counts
	// attempts with an estimate strictly below the request.
	Dispatches, ResourceFailures, SpuriousFailures, LoweredDispatches int
	// Completed and Rejected count jobs.
	Completed, Rejected int
	// EstimatorName echoes Config.Estimator.Name().
	EstimatorName string
	// PolicyName echoes the scheduling policy.
	PolicyName string
}

// jobState is the engine's mutable per-job bookkeeping.
type jobState struct {
	job *trace.Job
	// rec points into Result.Records, so per-job accounting is written
	// in place instead of copied out at the end of the run.
	rec      *JobRecord
	retry    bool
	enqueued bool
	// lastFailedEst remembers the capacity of the job's most recent
	// resource failure, so a retry never repeats a capacity that just
	// proved insufficient.
	lastFailedEst   units.MemSize
	hadResourceFail bool
	// rtEst caches the runtime prediction for the policy view; valid
	// while rtGen matches the engine's runtime-feedback generation.
	rtEst units.Seconds
	rtGen int
	// estHandle caches the job's similarity-group handle when the
	// estimator supports the handle fast path; -1 until resolved.
	estHandle int32
}

// endEvent is a scheduled termination.
type endEvent struct {
	at       units.Seconds
	seq      int
	js       *jobState
	alloc    cluster.Allocation
	est      units.MemSize
	success  bool
	spurious bool
	startAt  units.Seconds
	// runIdx is the event's current index in engine.running, kept in
	// sync by removeRunning so removal is O(1) instead of a scan.
	runIdx int
	// id is the event's permanent slot in engine.byID; heap entries
	// carry it instead of the pointer.
	id int32
}

// heapEntry is one termination as stored in the heap: the ordering key
// plus the event's id. Keeping entries pointer-free matters twice over:
// sift comparisons read the key from the entry itself instead of
// chasing an *endEvent (the old layout's cache misses), and swaps move
// plain values, so the write barrier that used to fire on every pointer
// swap (a measurable slice of the pre-overhaul profile) disappears.
// The entry is 16 bytes, so a 4-ary node's children share at most two
// cache lines. seq is narrowed to uint32: it would wrap only after 4.3
// billion dispatches, orders of magnitude beyond any simulated trace.
type heapEntry struct {
	at  units.Seconds
	seq uint32
	id  int32
}

// eventHeap is a hand-rolled 4-ary min-heap of terminations ordered by
// (time, seq). (time, seq) is a total order — seq is unique — so the
// pop sequence is fully determined by the comparator and independent of
// the heap's internal layout; replacing container/heap with typed
// sift-up/sift-down therefore cannot change results, and neither can
// the pointer-free entry layout or the wider fan-out (which halves the
// sift depth and keeps sibling entries on the same cache lines).
type eventHeap struct {
	h []heapEntry
}

func (h *eventHeap) len() int { return len(h.h) }

func entryBefore(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push adds a termination. It sifts a hole up and writes the entry once
// at its final position instead of swapping at every level — half the
// memory traffic of the swap form, same resulting order.
func (h *eventHeap) push(e heapEntry) {
	hh := append(h.h, e)
	h.h = hh
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entryBefore(e, hh[parent]) {
			break
		}
		hh[i] = hh[parent]
		i = parent
	}
	hh[i] = e
}

// pop removes and returns the earliest termination's entry, sifting the
// displaced last element down hole-style (move the winning child up,
// place the element once at the end). The internal layout this leaves
// differs from the swap form's, but pops always return the (at, seq)
// minimum of the current contents, so the pop sequence — the only thing
// the simulation observes — is identical.
func (h *eventHeap) pop() heapEntry {
	hh := h.h
	top := hh[0]
	n := len(hh) - 1
	x := hh[n]
	hh = hh[:n]
	h.h = hh
	if n == 0 {
		return top
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryBefore(hh[c], hh[min]) {
				min = c
			}
		}
		if !entryBefore(hh[min], x) {
			break
		}
		hh[i] = hh[min]
		i = min
	}
	hh[i] = x
	return top
}

// dirty bits accumulated between scheduling rounds; schedule consults
// them to skip rounds that provably cannot dispatch anything.
const (
	// dirtyArrival: a new job joined the tail of the queue.
	dirtyArrival uint8 = 1 << iota
	// dirtyRequeue: a failed job returned to the head of the queue.
	dirtyRequeue
	// dirtyFreed: a termination released nodes (and fed the estimator).
	dirtyFreed
)

// handleEstimator is the optional fast path implemented by estimators
// whose per-job state lives in similarity groups (SuccessiveApprox): the
// engine resolves a job's group handle once and reuses it for every
// later estimate and feedback, skipping the key derivation and hash
// probe those calls would otherwise repeat. The handle path answers
// exactly what the plain calls would — it is a lookup shortcut, not a
// different estimator.
type handleEstimator interface {
	GroupHandle(j *trace.Job) int32
	EstimateByHandle(h int32, j *trace.Job) units.MemSize
	FeedbackByHandle(h int32, o estimate.Outcome)
}

// engine is one run's state. Everything below is owned by the single
// goroutine driving Run; none of it is safe for concurrent use and none
// of it needs a lock.
type engine struct {
	cfg     Config
	keyed   handleEstimator
	rng     *rand.Rand
	queue   ringQueue
	events  eventHeap
	running []*endEvent
	result  Result
	now     units.Seconds
	seq     int

	// isFCFS selects the allocation-free fast path; needView gates the
	// policy-view mirror maintenance below.
	isFCFS   bool
	needView bool
	// dirty accumulates what changed since the last scheduling round;
	// blocked remembers that the FCFS head failed to start, so rounds
	// triggered only by arrivals are skipped until a node is freed or a
	// retry takes the head (bit-identical for pure estimators: nothing
	// the failing dispatch reads can have changed).
	dirty   uint8
	blocked bool

	// estGen counts Estimator.Feedback calls; rtGen counts
	// RuntimeEstimator.FeedbackRuntime calls. They version the caches
	// below: a cache entry tagged with the current generation is
	// exactly what the estimator would answer now.
	estGen int
	rtGen  int

	// Scratch buffers reused across scheduleWithPolicy rounds instead
	// of reallocating the full sched.View every round.
	viewQueue   []sched.QueuedJob
	startedBuf  []bool
	rejectedBuf []bool

	// runningView mirrors running index-for-index as the policies see
	// it; sortedByEnd caches its ExpectedEnd-ascending sort (rebuilt
	// only when runningGen moves). viewRTGen is the rtGen at which the
	// mirror's ExpectedEnds were computed.
	runningView []sched.RunningJob
	sortedByEnd []sched.RunningJob
	runningGen  int
	sortedGen   int
	viewRTGen   int

	// Head-estimate cache for the policy view's reservation arithmetic.
	headEstJob *trace.Job
	headEstGen int
	headEst    units.MemSize

	// free recycles endEvents: one is needed per in-flight execution,
	// not per dispatch over the whole run. byID resolves a heap entry's
	// id back to its event; it grows to the peak number of concurrent
	// executions and is written only when an event is first created.
	free []*endEvent
	byID []*endEvent
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.FCFS{}
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 50
	}
	if cfg.MaxVisibleQueue == 0 {
		cfg.MaxVisibleQueue = 1024
	}
	e := &engine{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x853C49E6748FEA9B)),
	}
	e.keyed, _ = cfg.Estimator.(handleEstimator)
	_, e.isFCFS = cfg.Policy.(sched.FCFS)
	e.needView = !e.isFCFS
	e.sortedGen = -1
	e.result.TotalNodes = cfg.Cluster.TotalNodes()
	e.result.EstimatorName = cfg.Estimator.Name()
	e.result.PolicyName = cfg.Policy.Name()

	jobs := cfg.Trace.Jobs
	e.result.Records = make([]JobRecord, len(jobs))
	states := make([]jobState, len(jobs))
	for i := range jobs {
		e.result.Records[i] = JobRecord{Job: &jobs[i], Submit: jobs[i].Submit}
		states[i] = jobState{job: &jobs[i], rec: &e.result.Records[i], estHandle: -1}
	}
	if len(jobs) > 0 {
		e.result.FirstSubmit = jobs[0].Submit
		e.now = jobs[0].Submit
	}

	nextArrival := 0
	lastEvent := e.now
	for nextArrival < len(states) || e.events.len() > 0 {
		// Pick the next event: terminations win ties so nodes free up
		// before same-instant arrivals are scheduled.
		if e.events.len() > 0 &&
			(nextArrival >= len(states) || e.events.h[0].at <= states[nextArrival].job.Submit) {
			ev := e.byID[e.events.pop().id]
			e.now = ev.at
			e.handleEnd(ev)
		} else {
			js := &states[nextArrival]
			nextArrival++
			e.now = js.job.Submit
			e.enqueue(js, false)
		}
		if e.now > lastEvent {
			lastEvent = e.now
		}
		e.schedule()
	}
	e.result.Makespan = lastEvent - e.result.FirstSubmit

	if err := cfg.Cluster.Check(); err != nil {
		return nil, fmt.Errorf("sim: cluster invariant broken after run: %w", err)
	}
	if free, total := cfg.Cluster.FreeNodes(), cfg.Cluster.TotalNodes(); free != total {
		return nil, fmt.Errorf("sim: %d of %d nodes still allocated after run", total-free, total)
	}
	return &e.result, nil
}

// enqueue adds a job to the wait queue; retried jobs go to the head, per
// the paper ("once it fails, the job returns to the head of the queue").
func (e *engine) enqueue(js *jobState, retry bool) {
	js.retry = retry
	js.enqueued = true
	if retry {
		e.queue.pushFront(js)
		e.dirty |= dirtyRequeue
	} else {
		e.queue.pushBack(js)
		e.dirty |= dirtyArrival
		if e.cfg.Journal != nil {
			e.journal(Event{At: e.now, Kind: EventArrival, JobID: js.job.ID, Nodes: js.job.Nodes})
		}
	}
}

// estimate asks the configured estimator for js's capacity estimate,
// via the cached group handle when the estimator supports it.
func (e *engine) estimate(js *jobState) units.MemSize {
	if e.keyed != nil {
		if js.estHandle < 0 {
			js.estHandle = e.keyed.GroupHandle(js.job)
		}
		return e.keyed.EstimateByHandle(js.estHandle, js.job)
	}
	return e.cfg.Estimator.Estimate(js.job)
}

// feedback delivers an execution outcome to the estimator, via the
// cached group handle when the estimator supports it.
func (e *engine) feedback(js *jobState, o estimate.Outcome) {
	if e.keyed != nil {
		if js.estHandle < 0 {
			js.estHandle = e.keyed.GroupHandle(js.job)
		}
		e.keyed.FeedbackByHandle(js.estHandle, o)
		return
	}
	e.cfg.Estimator.Feedback(o)
}

// journal records an event when journaling is enabled.
func (e *engine) journal(ev Event) {
	if e.cfg.Journal != nil {
		e.cfg.Journal.add(ev)
	}
}

// handleEnd releases the allocation, reports feedback, and finishes or
// re-queues the job. The endEvent is recycled on return.
func (e *engine) handleEnd(ev *endEvent) {
	if err := e.cfg.Cluster.Release(ev.alloc); err != nil {
		// A release failure is a simulator bug; make it loud.
		panic(err)
	}
	e.dirty |= dirtyFreed
	e.removeRunning(ev)

	elapsed := (e.now - ev.startAt).Sec()
	nodeSeconds := float64(ev.alloc.Nodes()) * elapsed
	if ev.success {
		e.result.UsefulNodeSeconds += nodeSeconds
		e.result.RequestedMemSeconds += ev.js.job.ReqMem.MBf() * nodeSeconds
		e.result.MatchedMemSeconds += ev.est.MBf() * nodeSeconds
		e.result.UsedMemSeconds += ev.js.job.UsedMem.MBf() * nodeSeconds
	} else {
		e.result.WastedNodeSeconds += nodeSeconds
	}

	if e.cfg.Journal != nil {
		kind := EventResourceFail
		switch {
		case ev.success:
			kind = EventComplete
		case ev.spurious:
			kind = EventSpuriousFail
		}
		e.journal(Event{At: e.now, Kind: kind, JobID: ev.js.job.ID,
			Nodes: ev.alloc.Nodes(), Estimate: ev.est, Allocated: ev.alloc.MinMem()})
	}

	o := estimate.Outcome{
		Job:       ev.js.job,
		Allocated: ev.alloc.MinMem(),
		Success:   ev.success,
	}
	if e.cfg.ExplicitFeedback {
		o.Explicit = true
		o.Used = ev.js.job.UsedMem
	}
	e.feedback(ev.js, o)
	e.estGen++

	js := ev.js
	success, startAt, est, minMem := ev.success, ev.startAt, ev.est, ev.alloc.MinMem()
	e.recycle(ev)

	if success {
		if e.cfg.Runtime != nil {
			e.cfg.Runtime.FeedbackRuntime(js.job, e.now-startAt)
			e.rtGen++
		}
		js.rec.Start = startAt
		js.rec.End = e.now
		js.rec.FinalAlloc = minMem
		js.rec.FinalEst = est
		js.rec.Completed = true
		e.result.Completed++
		return
	}
	e.enqueue(js, true)
}

// recycle drops a finished endEvent's references — so completed-job
// state is not retained by the pool — and returns it to the pool for
// the next dispatch. Only the reference fields are cleared: every value
// field is unconditionally overwritten by the next dispatch, and
// zeroing the whole struct would fire a write barrier over its pointer
// words on every completion.
func (e *engine) recycle(ev *endEvent) {
	ev.js = nil
	ev.alloc = cluster.Allocation{}
	e.free = append(e.free, ev)
}

// removeRunning deletes ev from the running set in O(1) via its tracked
// index, mirroring the move in the policy view. The swap-with-last
// ordering is exactly what the previous linear scan produced, so the
// running order (and everything downstream of it) is unchanged.
func (e *engine) removeRunning(ev *endEvent) {
	i, last := ev.runIdx, len(e.running)-1
	moved := e.running[last]
	e.running[i] = moved
	moved.runIdx = i
	e.running[last] = nil
	e.running = e.running[:last]
	if e.needView {
		e.runningView[i] = e.runningView[last]
		e.runningView[last] = sched.RunningJob{}
		e.runningView = e.runningView[:last]
	}
	e.runningGen++
}

// schedule runs one scheduling round under the configured policy — or
// proves it unnecessary and skips it. A round can only change the
// outcome if, since the last round, a node was freed, a job arrived, or
// a failed job was requeued; otherwise every input the policy and the
// dispatch path read (queue, estimator state, free capacity) is
// unchanged and the round is skipped.
func (e *engine) schedule() {
	if e.queue.len() == 0 {
		e.dirty = 0
		return
	}
	if e.dirty == 0 {
		return
	}
	if e.isFCFS {
		// Strict FCFS additionally ignores arrivals while the head is
		// blocked: a new tail job cannot unblock the head, and the
		// failing head attempt would re-read identical state. Only a
		// freed node or a head requeue can change the answer.
		if e.blocked && e.dirty&(dirtyFreed|dirtyRequeue) == 0 {
			e.dirty &^= dirtyArrival
			return
		}
		e.dirty = 0
		e.blocked = false
		for e.queue.len() > 0 {
			js := e.queue.at(0)
			started, rejected := e.dispatch(js)
			if rejected {
				e.queue.popFront()
				continue
			}
			if !started {
				e.blocked = true
				return
			}
			e.queue.popFront()
		}
		return
	}
	e.dirty = 0
	e.scheduleWithPolicy()
}

// policyRunningViews returns the running list in engine order and its
// ExpectedEnd-ascending sort, refreshing the caches only when the
// running set (or a runtime prediction) changed since they were built.
// The sort is the same sort.Slice over the same input order and
// comparator the policies used to run per round, so the cached result
// is bit-identical to resorting every round.
func (e *engine) policyRunningViews() (inOrder, byEnd []sched.RunningJob) {
	if e.cfg.Runtime != nil && e.viewRTGen != e.rtGen {
		for i := range e.runningView {
			r := &e.runningView[i]
			r.ExpectedEnd = r.Start + e.cfg.Runtime.EstimateRuntime(r.Job)
		}
		e.viewRTGen = e.rtGen
		e.runningGen++
	}
	if e.sortedGen != e.runningGen {
		e.sortedByEnd = append(e.sortedByEnd[:0], e.runningView...)
		sort.Slice(e.sortedByEnd, func(i, j int) bool {
			return e.sortedByEnd[i].ExpectedEnd < e.sortedByEnd[j].ExpectedEnd
		})
		e.sortedGen = e.runningGen
	}
	return e.runningView, e.sortedByEnd
}

// scheduleWithPolicy builds the policy view in the engine's scratch
// buffers and honours the policy's dispatch choices.
func (e *engine) scheduleWithPolicy() {
	visible := e.queue.len()
	if visible > e.cfg.MaxVisibleQueue {
		visible = e.cfg.MaxVisibleQueue
	}
	if cap(e.viewQueue) < visible {
		e.viewQueue = make([]sched.QueuedJob, 0, max(visible, 64))
	}
	e.viewQueue = e.viewQueue[:0]
	for i := 0; i < visible; i++ {
		js := e.queue.at(i)
		q := sched.QueuedJob{Job: js.job, Retry: js.retry}
		if e.cfg.Runtime != nil {
			if js.rtGen != e.rtGen {
				js.rtEst = e.cfg.Runtime.EstimateRuntime(js.job)
				js.rtGen = e.rtGen
			}
			q.RuntimeEstimate = js.rtEst
		}
		e.viewQueue = append(e.viewQueue, q)
	}
	view := sched.View{Now: e.now, Cluster: e.cfg.Cluster, Queue: e.viewQueue}
	if visible > 0 {
		// The head's estimate feeds backfilling reservation arithmetic;
		// it can only change when the estimator absorbs feedback.
		head := e.queue.at(0)
		if e.headEstJob != head.job || e.headEstGen != e.estGen {
			e.headEst = e.estimate(head)
			e.headEstJob, e.headEstGen = head.job, e.estGen
		}
		view.Queue[0].Estimate = e.headEst
	}
	view.Running, view.RunningByEnd = e.policyRunningViews()

	e.startedBuf = resetBools(e.startedBuf, visible)
	e.rejectedBuf = resetBools(e.rejectedBuf, visible)
	started, rejectedPos := e.startedBuf, e.rejectedBuf
	e.cfg.Policy.Schedule(&view, func(pos int) bool {
		if pos < 0 || pos >= visible || started[pos] || rejectedPos[pos] {
			return false
		}
		js := e.queue.at(pos)
		ok, rejected := e.dispatch(js)
		if rejected {
			rejectedPos[pos] = true
			return false
		}
		if ok {
			started[pos] = true
		}
		return ok
	})

	// Compact the queue, dropping started and rejected entries.
	e.queue.compact(visible, func(i int) bool { return started[i] || rejectedPos[i] })
}

// resetBools returns a zeroed length-n bool slice, reusing b's backing
// array when it is large enough.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// dispatch estimates, allocates, and starts a job. It returns
// started=false when the cluster has no room right now, and
// rejected=true when the job can never run (its estimate exceeds what an
// idle cluster offers) — such jobs are dropped so they cannot block the
// queue forever.
func (e *engine) dispatch(js *jobState) (started, rejected bool) {
	j := js.job
	est := e.estimate(js)
	if js.hadResourceFail && est.Eq(js.lastFailedEst) {
		// The estimator restored a capacity that this very job just
		// failed with (Algorithm 1 with a frozen learning rate and a
		// within-group usage spread — the paper's §2.3 J1/J2
		// limitation). Re-running at the same capacity is guaranteed to
		// fail again, so resubmit with the user's own request, as a
		// production scheduler would.
		est = j.ReqMem
	}
	if js.rec.Dispatches >= e.cfg.MaxAttempts {
		// Progress guarantee: after too many failures, fall back to the
		// user's request.
		est = j.ReqMem
	}
	if !e.cfg.Cluster.FitsAtAll(j.Nodes, est) {
		js.rec.Completed = false
		e.result.Rejected++
		if e.cfg.Journal != nil {
			e.journal(Event{At: e.now, Kind: EventReject, JobID: j.ID, Nodes: j.Nodes, Estimate: est})
		}
		return false, true
	}
	alloc, ok := e.cfg.Cluster.Allocate(j.Nodes, est)
	if !ok {
		return false, false
	}

	js.enqueued = false
	js.rec.Dispatches++
	e.result.Dispatches++
	if est.Less(j.ReqMem) {
		js.rec.Lowered = true
		e.result.LoweredDispatches++
	}
	if js.rec.Dispatches == 1 {
		js.rec.Start = e.now
	}

	if e.cfg.Journal != nil {
		e.journal(Event{At: e.now, Kind: EventDispatch, JobID: j.ID,
			Nodes: j.Nodes, Estimate: est, Allocated: alloc.MinMem()})
	}

	insufficient := !j.UsedMem.Fits(alloc.MinMem())
	spurious := e.cfg.SpuriousFailureProb > 0 && e.rng.Float64() < e.cfg.SpuriousFailureProb
	ev := e.newEvent()
	ev.seq, ev.js, ev.alloc, ev.est, ev.startAt = e.nextSeq(), js, alloc, est, e.now
	ev.spurious = spurious && !insufficient
	switch {
	case insufficient || spurious:
		ev.success = false
		// §3.1: "it fails after a random time, drawn uniformly between
		// zero and the execution run-time of that job".
		ev.at = e.now + units.Seconds(e.rng.Float64()*j.Runtime.Sec())
		if insufficient {
			js.rec.ResourceFailures++
			e.result.ResourceFailures++
			js.hadResourceFail = true
			js.lastFailedEst = est
		} else {
			js.rec.SpuriousFailures++
			e.result.SpuriousFailures++
		}
	default:
		ev.success = true
		ev.at = e.now + j.Runtime
	}
	e.events.push(heapEntry{at: ev.at, seq: uint32(ev.seq), id: ev.id})
	ev.runIdx = len(e.running)
	e.running = append(e.running, ev)
	if e.needView {
		expected := j.ReqTime
		if e.cfg.Runtime != nil {
			expected = e.cfg.Runtime.EstimateRuntime(j)
		}
		e.runningView = append(e.runningView, sched.RunningJob{
			Job:         j,
			Start:       e.now,
			ExpectedEnd: e.now + expected,
			Nodes:       alloc.Nodes(),
			MinMem:      alloc.MinMem(),
		})
	}
	e.runningGen++
	return true, false
}

// newEvent returns a pooled endEvent, or a fresh one (registered in
// byID) when the pool is dry.
func (e *engine) newEvent() *endEvent {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	ev := &endEvent{id: int32(len(e.byID))}
	e.byID = append(e.byID, ev)
	return ev
}

func (e *engine) nextSeq() int {
	e.seq++
	return e.seq
}
