// Package sim is the trace-driven, discrete-event cluster simulator the
// reproduction's experiments run on. It wires together the paper's
// Figure 2 loop: jobs arrive, the estimator predicts their actual
// requirements, the scheduler matches the *estimated* requirement against
// the heterogeneous cluster, and completion feedback (implicit or
// explicit) flows back into the estimator.
//
// Failure semantics follow §3.1 exactly: a job launched on nodes with
// less memory than it actually uses fails after a time drawn uniformly
// in (0, runtime), occupies its nodes until then, and returns to the
// head of the queue. There is no preemption.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/sched"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Config describes one simulation run.
type Config struct {
	// Trace supplies the jobs, sorted by submission time.
	Trace *trace.Trace
	// Cluster is the machine; it is mutated during the run, so pass a
	// fresh instance per run.
	Cluster *cluster.Cluster
	// Estimator predicts actual job requirements. estimate.Identity{}
	// reproduces classical matching (no estimation).
	Estimator estimate.Estimator
	// Policy picks jobs to dispatch; defaults to strict FCFS, the
	// paper's policy.
	Policy sched.Policy
	// ExplicitFeedback controls whether Outcome.Used is reported to the
	// estimator. The paper's simulations assume implicit feedback (the
	// general case).
	ExplicitFeedback bool
	// SpuriousFailureProb injects resource-unrelated failures (buggy
	// programs, faulty machines — §2.1's false positives) with the given
	// per-dispatch probability.
	SpuriousFailureProb float64
	// MaxAttempts caps dispatch attempts per job; beyond it the job is
	// dispatched with its full request, guaranteeing progress even under
	// adversarial estimates. 0 selects the default of 50.
	MaxAttempts int
	// MaxVisibleQueue bounds how many queued jobs a policy sees per
	// scheduling round (real schedulers window their queues too);
	// 0 selects the default of 1024. FCFS ignores it.
	MaxVisibleQueue int
	// Runtime optionally replaces the user's runtime estimates with
	// learned predictions for the scheduler's reservation and backfill
	// arithmetic (Tsafrir et al., the paper's related work [18]). Nil
	// keeps the user's ReqTime. Predictions never affect job execution —
	// only planning.
	Runtime estimate.RuntimeEstimator
	// Journal, when non-nil, receives the run's full event stream
	// (arrivals, dispatches, completions, failures, rejections) for
	// debugging and occupancy analysis.
	Journal *Journal
	// Seed drives failure times and spurious failures.
	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Trace == nil:
		return fmt.Errorf("sim: Config.Trace is nil")
	case c.Cluster == nil:
		return fmt.Errorf("sim: Config.Cluster is nil")
	case c.Estimator == nil:
		return fmt.Errorf("sim: Config.Estimator is nil")
	case c.SpuriousFailureProb < 0 || c.SpuriousFailureProb >= 1:
		return fmt.Errorf("sim: SpuriousFailureProb %g outside [0,1)", c.SpuriousFailureProb)
	case c.MaxAttempts < 0:
		return fmt.Errorf("sim: negative MaxAttempts %d", c.MaxAttempts)
	}
	return nil
}

// JobRecord is the audit trail of one job across the whole run.
type JobRecord struct {
	Job *trace.Job
	// Submit is the job's arrival time (copied for convenience).
	Submit units.Seconds
	// Start is when the job's final, successful execution began.
	Start units.Seconds
	// End is when the job finally completed.
	End units.Seconds
	// Dispatches counts execution attempts (1 = ran cleanly first try).
	Dispatches int
	// ResourceFailures counts executions that died from insufficient
	// allocated memory.
	ResourceFailures int
	// SpuriousFailures counts injected resource-unrelated failures.
	SpuriousFailures int
	// Lowered reports whether any dispatch used an estimate strictly
	// below the user's request.
	Lowered bool
	// FinalAlloc is the per-node capacity of the successful execution's
	// smallest node; FinalEst is the matching estimate (E′) that
	// execution was dispatched with.
	FinalAlloc, FinalEst units.MemSize
	// Completed is false for rejected jobs (jobs that can never fit the
	// cluster).
	Completed bool
}

// Result aggregates a finished run.
type Result struct {
	// Records holds one entry per trace job, in trace order.
	Records []JobRecord
	// Makespan is the time from the first submission to the last event.
	Makespan units.Seconds
	// FirstSubmit anchors the makespan.
	FirstSubmit units.Seconds
	// TotalNodes echoes the cluster size.
	TotalNodes int
	// UsefulNodeSeconds counts node-seconds spent on executions that
	// completed; WastedNodeSeconds counts node-seconds consumed by
	// failed executions.
	UsefulNodeSeconds, WastedNodeSeconds float64
	// RequestedMemSeconds is Σ requested-memory × nodes × elapsed over
	// successful executions; MatchedMemSeconds is the same with the
	// estimate the matcher used (E′ of Algorithm 1); UsedMemSeconds
	// with the true consumption. Matched < Requested is the matching
	// capacity the estimator reclaimed; Matched − Used is the residual
	// over-allocation.
	RequestedMemSeconds, MatchedMemSeconds, UsedMemSeconds float64
	// Dispatches counts all execution attempts; ResourceFailures and
	// SpuriousFailures divide the failed ones; LoweredDispatches counts
	// attempts with an estimate strictly below the request.
	Dispatches, ResourceFailures, SpuriousFailures, LoweredDispatches int
	// Completed and Rejected count jobs.
	Completed, Rejected int
	// EstimatorName echoes Config.Estimator.Name().
	EstimatorName string
	// PolicyName echoes the scheduling policy.
	PolicyName string
}

// jobState is the engine's mutable per-job bookkeeping.
type jobState struct {
	job      *trace.Job
	rec      JobRecord
	retry    bool
	enqueued bool
	// lastFailedEst remembers the capacity of the job's most recent
	// resource failure, so a retry never repeats a capacity that just
	// proved insufficient.
	lastFailedEst   units.MemSize
	hadResourceFail bool
}

// endEvent is a scheduled termination.
type endEvent struct {
	at       units.Seconds
	seq      int
	js       *jobState
	alloc    cluster.Allocation
	est      units.MemSize
	success  bool
	spurious bool
	startAt  units.Seconds
}

// eventHeap orders terminations by (time, seq) for determinism.
type eventHeap []*endEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*endEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// engine is one run's state.
type engine struct {
	cfg     Config
	rng     *rand.Rand
	queue   []*jobState
	events  eventHeap
	running []*endEvent
	result  Result
	now     units.Seconds
	seq     int
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.FCFS{}
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 50
	}
	if cfg.MaxVisibleQueue == 0 {
		cfg.MaxVisibleQueue = 1024
	}
	e := &engine{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x853C49E6748FEA9B)),
	}
	e.result.TotalNodes = cfg.Cluster.TotalNodes()
	e.result.EstimatorName = cfg.Estimator.Name()
	e.result.PolicyName = cfg.Policy.Name()

	jobs := cfg.Trace.Jobs
	states := make([]jobState, len(jobs))
	for i := range jobs {
		states[i] = jobState{job: &jobs[i], rec: JobRecord{Job: &jobs[i], Submit: jobs[i].Submit}}
	}
	if len(jobs) > 0 {
		e.result.FirstSubmit = jobs[0].Submit
		e.now = jobs[0].Submit
	}

	nextArrival := 0
	lastEvent := e.now
	for nextArrival < len(states) || len(e.events) > 0 {
		// Pick the next event: terminations win ties so nodes free up
		// before same-instant arrivals are scheduled.
		if len(e.events) > 0 &&
			(nextArrival >= len(states) || e.events[0].at <= states[nextArrival].job.Submit) {
			ev := heap.Pop(&e.events).(*endEvent)
			e.now = ev.at
			e.handleEnd(ev)
		} else {
			js := &states[nextArrival]
			nextArrival++
			e.now = js.job.Submit
			e.enqueue(js, false)
		}
		if e.now > lastEvent {
			lastEvent = e.now
		}
		e.schedule()
	}
	e.result.Makespan = lastEvent - e.result.FirstSubmit

	e.result.Records = make([]JobRecord, len(states))
	for i := range states {
		e.result.Records[i] = states[i].rec
	}
	if err := cfg.Cluster.Check(); err != nil {
		return nil, fmt.Errorf("sim: cluster invariant broken after run: %w", err)
	}
	if free, total := cfg.Cluster.FreeNodes(), cfg.Cluster.TotalNodes(); free != total {
		return nil, fmt.Errorf("sim: %d of %d nodes still allocated after run", total-free, total)
	}
	return &e.result, nil
}

// enqueue adds a job to the wait queue; retried jobs go to the head, per
// the paper ("once it fails, the job returns to the head of the queue").
func (e *engine) enqueue(js *jobState, retry bool) {
	js.retry = retry
	js.enqueued = true
	if retry {
		e.queue = append([]*jobState{js}, e.queue...)
	} else {
		e.queue = append(e.queue, js)
		e.journal(Event{At: e.now, Kind: EventArrival, JobID: js.job.ID, Nodes: js.job.Nodes})
	}
}

// journal records an event when journaling is enabled.
func (e *engine) journal(ev Event) {
	if e.cfg.Journal != nil {
		e.cfg.Journal.add(ev)
	}
}

// handleEnd releases the allocation, reports feedback, and finishes or
// re-queues the job.
func (e *engine) handleEnd(ev *endEvent) {
	if err := e.cfg.Cluster.Release(ev.alloc); err != nil {
		// A release failure is a simulator bug; make it loud.
		panic(err)
	}
	e.removeRunning(ev)

	elapsed := (e.now - ev.startAt).Sec()
	nodeSeconds := float64(ev.alloc.Nodes()) * elapsed
	if ev.success {
		e.result.UsefulNodeSeconds += nodeSeconds
		e.result.RequestedMemSeconds += ev.js.job.ReqMem.MBf() * nodeSeconds
		e.result.MatchedMemSeconds += ev.est.MBf() * nodeSeconds
		e.result.UsedMemSeconds += ev.js.job.UsedMem.MBf() * nodeSeconds
	} else {
		e.result.WastedNodeSeconds += nodeSeconds
	}

	switch {
	case ev.success:
		e.journal(Event{At: e.now, Kind: EventComplete, JobID: ev.js.job.ID,
			Nodes: ev.alloc.Nodes(), Estimate: ev.est, Allocated: ev.alloc.MinMem()})
	case ev.spurious:
		e.journal(Event{At: e.now, Kind: EventSpuriousFail, JobID: ev.js.job.ID,
			Nodes: ev.alloc.Nodes(), Estimate: ev.est, Allocated: ev.alloc.MinMem()})
	default:
		e.journal(Event{At: e.now, Kind: EventResourceFail, JobID: ev.js.job.ID,
			Nodes: ev.alloc.Nodes(), Estimate: ev.est, Allocated: ev.alloc.MinMem()})
	}

	o := estimate.Outcome{
		Job:       ev.js.job,
		Allocated: ev.alloc.MinMem(),
		Success:   ev.success,
	}
	if e.cfg.ExplicitFeedback {
		o.Explicit = true
		o.Used = ev.js.job.UsedMem
	}
	e.cfg.Estimator.Feedback(o)

	if ev.success {
		if e.cfg.Runtime != nil {
			e.cfg.Runtime.FeedbackRuntime(ev.js.job, e.now-ev.startAt)
		}
		ev.js.rec.Start = ev.startAt
		ev.js.rec.End = e.now
		ev.js.rec.FinalAlloc = ev.alloc.MinMem()
		ev.js.rec.FinalEst = ev.est
		ev.js.rec.Completed = true
		e.result.Completed++
		return
	}
	e.enqueue(ev.js, true)
}

func (e *engine) removeRunning(ev *endEvent) {
	for i, r := range e.running {
		if r == ev {
			e.running[i] = e.running[len(e.running)-1]
			e.running = e.running[:len(e.running)-1]
			return
		}
	}
}

// schedule runs one scheduling round under the configured policy.
func (e *engine) schedule() {
	if len(e.queue) == 0 {
		return
	}
	if _, isFCFS := e.cfg.Policy.(sched.FCFS); isFCFS {
		// Fast path: strict FCFS needs no queue snapshot.
		for len(e.queue) > 0 {
			js := e.queue[0]
			started, rejected := e.dispatch(js)
			if rejected {
				e.queue = e.queue[1:]
				continue
			}
			if !started {
				return
			}
			e.queue = e.queue[1:]
		}
		return
	}
	e.scheduleWithPolicy()
}

// scheduleWithPolicy builds the policy view and honours its dispatch
// choices.
func (e *engine) scheduleWithPolicy() {
	visible := len(e.queue)
	if visible > e.cfg.MaxVisibleQueue {
		visible = e.cfg.MaxVisibleQueue
	}
	view := sched.View{Now: e.now, Cluster: e.cfg.Cluster}
	view.Queue = make([]sched.QueuedJob, visible)
	for i := 0; i < visible; i++ {
		js := e.queue[i]
		view.Queue[i] = sched.QueuedJob{Job: js.job, Retry: js.retry}
		if e.cfg.Runtime != nil {
			view.Queue[i].RuntimeEstimate = e.cfg.Runtime.EstimateRuntime(js.job)
		}
	}
	if visible > 0 {
		// The head's estimate feeds backfilling reservation arithmetic.
		view.Queue[0].Estimate = e.cfg.Estimator.Estimate(e.queue[0].job)
	}
	view.Running = make([]sched.RunningJob, len(e.running))
	for i, r := range e.running {
		expected := r.js.job.ReqTime
		if e.cfg.Runtime != nil {
			expected = e.cfg.Runtime.EstimateRuntime(r.js.job)
		}
		view.Running[i] = sched.RunningJob{
			Job:         r.js.job,
			Start:       r.startAt,
			ExpectedEnd: r.startAt + expected,
			Nodes:       r.alloc.Nodes(),
			MinMem:      r.alloc.MinMem(),
		}
	}

	started := make([]bool, visible)
	rejectedPos := make([]bool, visible)
	e.cfg.Policy.Schedule(&view, func(pos int) bool {
		if pos < 0 || pos >= visible || started[pos] || rejectedPos[pos] {
			return false
		}
		js := e.queue[pos]
		ok, rejected := e.dispatch(js)
		if rejected {
			rejectedPos[pos] = true
			return false
		}
		if ok {
			started[pos] = true
		}
		return ok
	})

	// Compact the queue, dropping started and rejected entries.
	kept := e.queue[:0]
	for i, js := range e.queue {
		if i < visible && (started[i] || rejectedPos[i]) {
			continue
		}
		kept = append(kept, js)
	}
	e.queue = kept
}

// dispatch estimates, allocates, and starts a job. It returns
// started=false when the cluster has no room right now, and
// rejected=true when the job can never run (its estimate exceeds what an
// idle cluster offers) — such jobs are dropped so they cannot block the
// queue forever.
func (e *engine) dispatch(js *jobState) (started, rejected bool) {
	j := js.job
	est := e.cfg.Estimator.Estimate(j)
	if js.hadResourceFail && est.Eq(js.lastFailedEst) {
		// The estimator restored a capacity that this very job just
		// failed with (Algorithm 1 with a frozen learning rate and a
		// within-group usage spread — the paper's §2.3 J1/J2
		// limitation). Re-running at the same capacity is guaranteed to
		// fail again, so resubmit with the user's own request, as a
		// production scheduler would.
		est = j.ReqMem
	}
	if js.rec.Dispatches >= e.cfg.MaxAttempts {
		// Progress guarantee: after too many failures, fall back to the
		// user's request.
		est = j.ReqMem
	}
	if !e.cfg.Cluster.FitsAtAll(j.Nodes, est) {
		js.rec.Completed = false
		e.result.Rejected++
		e.journal(Event{At: e.now, Kind: EventReject, JobID: j.ID, Nodes: j.Nodes, Estimate: est})
		return false, true
	}
	alloc, ok := e.cfg.Cluster.Allocate(j.Nodes, est)
	if !ok {
		return false, false
	}

	js.enqueued = false
	js.rec.Dispatches++
	e.result.Dispatches++
	if est.Less(j.ReqMem) {
		js.rec.Lowered = true
		e.result.LoweredDispatches++
	}
	if js.rec.Dispatches == 1 {
		js.rec.Start = e.now
	}

	e.journal(Event{At: e.now, Kind: EventDispatch, JobID: j.ID,
		Nodes: j.Nodes, Estimate: est, Allocated: alloc.MinMem()})

	insufficient := !j.UsedMem.Fits(alloc.MinMem())
	spurious := e.cfg.SpuriousFailureProb > 0 && e.rng.Float64() < e.cfg.SpuriousFailureProb
	ev := &endEvent{seq: e.nextSeq(), js: js, alloc: alloc, est: est, startAt: e.now}
	ev.spurious = spurious && !insufficient
	switch {
	case insufficient || spurious:
		ev.success = false
		// §3.1: "it fails after a random time, drawn uniformly between
		// zero and the execution run-time of that job".
		ev.at = e.now + units.Seconds(e.rng.Float64()*j.Runtime.Sec())
		if insufficient {
			js.rec.ResourceFailures++
			e.result.ResourceFailures++
			js.hadResourceFail = true
			js.lastFailedEst = est
		} else {
			js.rec.SpuriousFailures++
			e.result.SpuriousFailures++
		}
	default:
		ev.success = true
		ev.at = e.now + j.Runtime
	}
	heap.Push(&e.events, ev)
	e.running = append(e.running, ev)
	return true, false
}

func (e *engine) nextSeq() int {
	e.seq++
	return e.seq
}
