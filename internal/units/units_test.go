package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemSizeString(t *testing.T) {
	cases := []struct {
		in   MemSize
		want string
	}{
		{32, "32MB"},
		{24, "24MB"},
		{0, "0MB"},
		{1536, "1.5GB"},
		{1024, "1GB"},
		{16.7, "16.7MB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("MemSize(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestParseMemSize(t *testing.T) {
	cases := []struct {
		in      string
		want    MemSize
		wantErr bool
	}{
		{"32MB", 32, false},
		{"32", 32, false},
		{"1.5GB", 1536, false},
		{"512KB", 0.5, false},
		{" 24 MB", 24, false},
		{"24mb", 24, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-4MB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMemSize(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMemSize(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMemSize(%q): %v", c.in, err)
			continue
		}
		if !got.Eq(c.want) {
			t.Errorf("ParseMemSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseMemSizeRoundTrip(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		m := MemSize(float64(raw) / 4)
		parsed, err := ParseMemSize(m.String())
		if err != nil {
			return false
		}
		// String keeps one decimal of the display unit (MB below 1 GB,
		// GB above), so allow half a display decimal of slack.
		unit := 1.0
		if m >= GB {
			unit = float64(GB)
		}
		return math.Abs(parsed.MBf()-m.MBf()) <= 0.05*unit+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFitsAndLess(t *testing.T) {
	if !MemSize(24).Fits(24) {
		t.Error("24MB should fit a 24MB capacity")
	}
	if !MemSize(24).Fits(32) {
		t.Error("24MB should fit a 32MB capacity")
	}
	if MemSize(24.01).Fits(24) {
		t.Error("24.01MB should not fit a 24MB capacity")
	}
	if MemSize(24).Less(24) {
		t.Error("24 is not less than 24")
	}
	if !MemSize(23.9).Less(24) {
		t.Error("23.9 is less than 24")
	}
	// Tolerance: values within 1 KB compare equal.
	if MemSize(24).Less(24 + 1.0/4096) {
		t.Error("sub-tolerance difference should not register as Less")
	}
}

func TestCeilTo(t *testing.T) {
	caps := []MemSize{24, 32, 8}
	cases := []struct {
		in     MemSize
		want   MemSize
		wantOK bool
	}{
		{4, 8, true},
		{8, 8, true},
		{8.5, 24, true},
		{16, 24, true},
		{24, 24, true},
		{25, 32, true},
		{32, 32, true},
		{33, 0, false},
		{0, 8, true},
	}
	for _, c := range cases {
		got, ok := c.in.CeilTo(caps)
		if ok != c.wantOK || (ok && !got.Eq(c.want)) {
			t.Errorf("CeilTo(%v) = (%v,%v), want (%v,%v)", c.in, got, ok, c.want, c.wantOK)
		}
	}
}

func TestCeilToProperty(t *testing.T) {
	caps := []MemSize{4, 8, 16, 24, 32}
	err := quick.Check(func(raw uint8) bool {
		m := MemSize(float64(raw) / 8) // 0..31.875
		got, ok := m.CeilTo(caps)
		if !ok {
			return m.MBf() > 32
		}
		// The result is ≥ m and no smaller capacity would do.
		if !m.Fits(got) {
			return false
		}
		for _, c := range caps {
			if m.Fits(c) && c.Less(got) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCeilToEmpty(t *testing.T) {
	if _, ok := MemSize(1).CeilTo(nil); ok {
		t.Error("CeilTo with no capacities should report !ok")
	}
}

func TestMinMaxMem(t *testing.T) {
	if MaxMem(3, 7) != 7 || MaxMem(7, 3) != 7 {
		t.Error("MaxMem broken")
	}
	if MinMem(3, 7) != 3 || MinMem(7, 3) != 3 {
		t.Error("MinMem broken")
	}
}

func TestSortMemSizes(t *testing.T) {
	s := []MemSize{32, 4, 24, 8}
	SortMemSizes(s)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
}

func TestDiv(t *testing.T) {
	if got := MemSize(20).Div(1.2); math.Abs(got.MBf()-16.6667) > 0.001 {
		t.Errorf("20/1.2 = %v, want ≈16.667 (the paper's §3.2 example)", got)
	}
}

func TestBytes(t *testing.T) {
	if got := MemSize(1).Bytes(); got != 1024*1024 {
		t.Errorf("1MB = %d bytes, want %d", got, 1024*1024)
	}
	if got := MemSize(0.5).Bytes(); got != 512*1024 {
		t.Errorf("0.5MB = %d bytes, want %d", got, 512*1024)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{30, "30s"},
		{90, "1.5m"},
		{3 * Hour, "3h"},
		{36 * Hour, "1.5d"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !MemSize(0).IsZero() {
		t.Error("0 should be zero")
	}
	if MemSize(0.01).IsZero() {
		t.Error("0.01MB is not zero")
	}
}
