// Package units defines the scalar quantities shared by the workload,
// estimation, and simulation packages: memory capacities and simulation
// time.
//
// Memory is measured in megabytes using a float64-based type. The paper's
// successive-approximation estimator repeatedly divides capacities by a
// learning rate α (e.g. 20 MB / 1.2 = 16.7 MB), so fractional megabytes
// are first-class values rather than rounding artifacts. Simulation time
// is measured in seconds, following the Standard Workload Format.
package units

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MemSize is an amount of memory in megabytes (MB). The zero value means
// "no memory" and is a valid capacity (the paper treats a job that does
// not use a resource as consuming zero capacity of it).
type MemSize float64

// Common capacities used throughout the CM5 reproduction.
const (
	MB MemSize = 1
	GB MemSize = 1024
)

// memEpsilon is the tolerance used when comparing memory quantities.
// Capacities in this system are derived from integer megabyte machine
// sizes divided by small rational learning rates, so 1 KB of slack is far
// below any meaningful difference and far above float64 noise.
const memEpsilon = 1.0 / 1024.0

// MBf reports the size as a float64 number of megabytes.
func (m MemSize) MBf() float64 { return float64(m) }

// Bytes reports the size as a whole number of bytes, rounding to the
// nearest byte.
func (m MemSize) Bytes() int64 { return int64(math.Round(float64(m) * 1024 * 1024)) }

// IsZero reports whether the size is zero within tolerance.
func (m MemSize) IsZero() bool { return math.Abs(float64(m)) < memEpsilon }

// Fits reports whether a demand of size m can be satisfied by a capacity
// of size capacity, i.e. m ≤ capacity within tolerance.
func (m MemSize) Fits(capacity MemSize) bool {
	return float64(m) <= float64(capacity)+memEpsilon
}

// Less reports whether m < other by more than the comparison tolerance.
func (m MemSize) Less(other MemSize) bool {
	return float64(m) < float64(other)-memEpsilon
}

// Eq reports whether the two sizes are equal within tolerance.
func (m MemSize) Eq(other MemSize) bool {
	return math.Abs(float64(m)-float64(other)) < memEpsilon
}

// Div returns m divided by the (positive) factor f.
func (m MemSize) Div(f float64) MemSize { return MemSize(float64(m) / f) }

// String formats the size compactly: "24MB", "1.5GB", "16.7MB".
func (m MemSize) String() string {
	v := float64(m)
	switch {
	case math.Abs(v) >= float64(GB):
		return trimFloat(v/float64(GB)) + "GB"
	default:
		return trimFloat(v) + "MB"
	}
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 1, 64)
	return strings.TrimSuffix(s, ".0")
}

// ParseMemSize parses strings like "32MB", "24", "1.5GB", "512KB". A bare
// number is interpreted as megabytes, matching the SWF convention used by
// the LANL CM5 trace.
func ParseMemSize(s string) (MemSize, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty memory size")
	}
	mult := 1.0
	upper := strings.ToUpper(t)
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, t = float64(GB), t[:len(t)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, t = 1, t[:len(t)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, t = 1.0/1024.0, t[:len(t)-2]
	case strings.HasSuffix(upper, "B") && !strings.HasSuffix(upper, "MB"):
		mult, t = 1.0/(1024.0*1024.0), t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad memory size %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative memory size %q", s)
	}
	return MemSize(v * mult), nil
}

// CeilTo rounds m up to the smallest value in capacities that is ≥ m.
// capacities need not be sorted. It returns ok=false when every capacity
// is smaller than m. This implements the ⌈·⌉ operator of Algorithm 1
// line 6: "the estimated resource capacity for the job is rounded to the
// lowest resource capacity within the cluster greater than Eᵢ".
func (m MemSize) CeilTo(capacities []MemSize) (rounded MemSize, ok bool) {
	best := MemSize(math.Inf(1))
	found := false
	for _, c := range capacities {
		if m.Fits(c) && c.Less(best) {
			best, found = c, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// SortMemSizes sorts the slice ascending in place.
func SortMemSizes(s []MemSize) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// MaxMem returns the larger of a and b.
func MaxMem(a, b MemSize) MemSize {
	if a > b {
		return a
	}
	return b
}

// MinMem returns the smaller of a and b.
func MinMem(a, b MemSize) MemSize {
	if a < b {
		return a
	}
	return b
}

// Seconds is a span of simulated wall-clock time, in seconds. The
// Standard Workload Format records all times as integer seconds from the
// start of the log; this type keeps fractional precision because failure
// times are drawn uniformly inside a job's runtime.
type Seconds float64

// Common time spans.
const (
	Second Seconds = 1
	Minute         = 60 * Second
	Hour           = 60 * Minute
	Day            = 24 * Hour
	Week           = 7 * Day
)

// Sec reports the span as a float64 number of seconds.
func (s Seconds) Sec() float64 { return float64(s) }

// String formats the span using the largest convenient unit.
func (s Seconds) String() string {
	v := float64(s)
	abs := math.Abs(v)
	switch {
	case abs >= float64(Day):
		return trimFloat(v/float64(Day)) + "d"
	case abs >= float64(Hour):
		return trimFloat(v/float64(Hour)) + "h"
	case abs >= float64(Minute):
		return trimFloat(v/float64(Minute)) + "m"
	default:
		return trimFloat(v) + "s"
	}
}
