package units

import "testing"

// FuzzParseMemSize checks that arbitrary input never panics the parser,
// accepted values are non-negative, and formatting an accepted value
// yields a string the parser accepts again.
func FuzzParseMemSize(f *testing.F) {
	f.Add("32MB")
	f.Add("1.5GB")
	f.Add("512KB")
	f.Add("24")
	f.Add("")
	f.Add("-1MB")
	f.Add("MBMB")
	f.Add("1e309GB")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ParseMemSize(input)
		if err != nil {
			return
		}
		if m < 0 {
			t.Fatalf("accepted a negative size: %v from %q", m, input)
		}
		if _, err := ParseMemSize(m.String()); err != nil {
			t.Fatalf("own formatting rejected: %v → %q: %v", float64(m), m.String(), err)
		}
	})
}
