package sched

import (
	"testing"

	"overprov/internal/trace"
	"overprov/internal/units"
)

func TestConservativeName(t *testing.T) {
	if (Conservative{}).Name() != "conservative-backfill" {
		t.Error("policy name changed")
	}
}

func TestProfileEarliestSlot(t *testing.T) {
	p := &profile{
		times: []units.Seconds{0, 100, 200},
		free:  []int{2, 6, 10},
	}
	cases := []struct {
		n    int
		dur  units.Seconds
		want units.Seconds
	}{
		{2, 50, 0},    // fits immediately
		{4, 50, 100},  // needs the first release
		{8, 50, 200},  // needs the second release
		{6, 500, 100}, // long job: 6 free from 100 onwards
		{20, 10, 200}, // never enough: reserved at the horizon
	}
	for _, c := range cases {
		if got := p.earliestSlot(0, c.n, c.dur); got != c.want {
			t.Errorf("earliestSlot(n=%d,dur=%v) = %v, want %v", c.n, c.dur, got, c.want)
		}
	}
}

func TestProfileSlotSpanningDeficit(t *testing.T) {
	// 6 nodes free now, but a reservation dip at [100,200) leaves only
	// 2: a 4-node 150s job cannot start at t=0 (window crosses the dip)
	// and must wait until 200.
	p := &profile{
		times: []units.Seconds{0, 100, 200},
		free:  []int{6, 2, 6},
	}
	if got := p.earliestSlot(0, 4, 150); got != 200 {
		t.Errorf("slot = %v, want 200 (window must clear the dip)", got)
	}
	// A short job fits before the dip.
	if got := p.earliestSlot(0, 4, 50); got != 0 {
		t.Errorf("short slot = %v, want 0", got)
	}
}

func TestProfileReserve(t *testing.T) {
	p := &profile{times: []units.Seconds{0}, free: []int{8}}
	p.reserve(10, 3, 20) // [10,30): 5 free
	if got := p.earliestSlot(0, 8, 5); got != 0 {
		t.Errorf("pre-reservation window should fit: got %v", got)
	}
	if got := p.earliestSlot(10, 8, 5); got != 30 {
		t.Errorf("slot inside reservation = %v, want 30", got)
	}
	if got := p.earliestSlot(0, 5, 100); got != 30 {
		// 5 nodes continuously for 100s only after the reservation ends
		// — at t=0 the window [0,100) crosses the dip to 5... 5 ≤ 5
		// actually fits. Recheck: free during dip = 8-3 = 5 ≥ 5. So 0.
		if got != 0 {
			t.Errorf("slot = %v, want 0 (dip still leaves 5 free)", got)
		}
	}
}

func TestConservativeStartsFIFOWhenEmpty(t *testing.T) {
	cl := testCluster(t)
	v := &View{
		Queue:   []QueuedJob{qjob(1, 2, 100, 16), qjob(2, 2, 100, 16)},
		Cluster: cl,
	}
	try, attempts := tryScript(map[int]bool{0: true, 1: true})
	Conservative{}.Schedule(v, try)
	if len(*attempts) != 2 || (*attempts)[0] != 0 || (*attempts)[1] != 1 {
		t.Errorf("attempts = %v, want FIFO starts", *attempts)
	}
}

func TestConservativeNeverDelaysEarlierReservation(t *testing.T) {
	cl := testCluster(t)
	// Occupy the whole machine until t=100.
	if _, ok := cl.Allocate(8, 1); !ok {
		t.Fatal("setup failed")
	}
	running := []RunningJob{{
		Job:         &trace.Job{ID: 99, Nodes: 8, ReqTime: 100},
		ExpectedEnd: 100, Nodes: 8, MinMem: 24,
	}}
	// Head needs the full machine at t=100; a later 8-node job with a
	// long runtime would push the head's reservation and must NOT be
	// attempted; a later short job can't help either (zero free nodes),
	// so nothing starts.
	v := &View{
		Now:     0,
		Queue:   []QueuedJob{qjob(1, 8, 100, 16), qjob(2, 8, 1000, 16), qjob(3, 1, 10, 16)},
		Cluster: cl,
		Running: running,
	}
	try, attempts := tryScript(map[int]bool{})
	Conservative{}.Schedule(v, try)
	if len(*attempts) != 0 {
		t.Errorf("attempts = %v, want none (machine full, reservations only)", *attempts)
	}
}

func TestConservativeBackfillsIntoGaps(t *testing.T) {
	cl := testCluster(t)
	// 4 nodes busy until t=100; 4 free now.
	if _, ok := cl.Allocate(4, 25); !ok {
		t.Fatal("setup failed")
	}
	running := []RunningJob{{
		Job:         &trace.Job{ID: 99, Nodes: 4, ReqTime: 100},
		ExpectedEnd: 100, Nodes: 4, MinMem: 32,
	}}
	// Head needs 8 nodes → reserved at t=100. A 4-node job with
	// ReqTime 50 finishes before the head's reservation and must start
	// now; a 4-node job with ReqTime 500 would overlap [100, …) and
	// push the head, so it must not be attempted.
	v := &View{
		Now:     0,
		Queue:   []QueuedJob{qjob(1, 8, 100, 16), qjob(2, 4, 50, 16), qjob(3, 4, 500, 16)},
		Cluster: cl,
		Running: running,
	}
	try, attempts := tryScript(map[int]bool{1: true})
	Conservative{}.Schedule(v, try)
	if len(*attempts) != 1 || (*attempts)[0] != 1 {
		t.Errorf("attempts = %v, want only the gap-sized job", *attempts)
	}
}

func TestConservativeWindow(t *testing.T) {
	cl := testCluster(t)
	queue := make([]QueuedJob, 6)
	for i := range queue {
		queue[i] = qjob(i+1, 1, 10, 16)
	}
	v := &View{Queue: queue, Cluster: cl}
	fits := map[int]bool{}
	for i := range queue {
		fits[i] = true
	}
	try, attempts := tryScript(fits)
	Conservative{Window: 3}.Schedule(v, try)
	if len(*attempts) != 3 {
		t.Errorf("attempts = %v, window 3 should cap processing", *attempts)
	}
}

func TestInsertBreakMaintainsOrder(t *testing.T) {
	p := &profile{times: []units.Seconds{0, 100}, free: []int{4, 8}}
	p.insertBreak(50)
	if len(p.times) != 3 || p.times[1] != 50 || p.free[1] != 4 {
		t.Errorf("profile after insert = %v/%v", p.times, p.free)
	}
	p.insertBreak(50) // idempotent
	if len(p.times) != 3 {
		t.Error("duplicate breakpoint inserted")
	}
	p.insertBreak(-10) // before start: no-op
	if len(p.times) != 3 {
		t.Error("pre-start breakpoint inserted")
	}
}
