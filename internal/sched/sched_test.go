package sched

import (
	"testing"

	"overprov/internal/cluster"
	"overprov/internal/trace"
	"overprov/internal/units"
)

func qjob(id, nodes int, reqTime float64, est float64) QueuedJob {
	return QueuedJob{
		Job: &trace.Job{
			ID: id, Nodes: nodes, ReqTime: units.Seconds(reqTime),
			Runtime: units.Seconds(reqTime / 2), ReqMem: 32, UsedMem: 8,
		},
		Estimate: units.MemSize(est),
	}
}

// tryScript simulates the engine: the policy's try succeeds for the
// queue positions listed in fits.
func tryScript(fits map[int]bool) (TryFunc, *[]int) {
	var attempts []int
	return func(pos int) bool {
		attempts = append(attempts, pos)
		return fits[pos]
	}, &attempts
}

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{Nodes: 4, Mem: 24}, cluster.Spec{Nodes: 4, Mem: 32})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFCFSStopsAtFirstBlocked(t *testing.T) {
	v := &View{Queue: []QueuedJob{qjob(1, 1, 100, 16), qjob(2, 1, 100, 16), qjob(3, 1, 100, 16)}}
	try, attempts := tryScript(map[int]bool{0: true, 1: false, 2: true})
	FCFS{}.Schedule(v, try)
	// Head starts, second blocks, third must NOT be attempted.
	if len(*attempts) != 2 || (*attempts)[0] != 0 || (*attempts)[1] != 1 {
		t.Errorf("attempts = %v, want [0 1]", *attempts)
	}
}

func TestFCFSDrainsWhenEverythingFits(t *testing.T) {
	v := &View{Queue: []QueuedJob{qjob(1, 1, 100, 16), qjob(2, 1, 100, 16)}}
	try, attempts := tryScript(map[int]bool{0: true, 1: true})
	FCFS{}.Schedule(v, try)
	if len(*attempts) != 2 {
		t.Errorf("attempts = %v, want both positions", *attempts)
	}
}

func TestSJFAttemptsShortestFirst(t *testing.T) {
	v := &View{Queue: []QueuedJob{
		qjob(1, 1, 300, 16), // pos 0, longest
		qjob(2, 1, 100, 16), // pos 1, shortest
		qjob(3, 1, 200, 16), // pos 2
	}}
	try, attempts := tryScript(map[int]bool{0: true, 1: true, 2: true})
	SJF{}.Schedule(v, try)
	want := []int{1, 2, 0}
	if len(*attempts) != 3 {
		t.Fatalf("attempts = %v", *attempts)
	}
	for i, w := range want {
		if (*attempts)[i] != w {
			t.Errorf("attempt %d = %d, want %d (shortest ReqTime first)", i, (*attempts)[i], w)
		}
	}
}

func TestSJFBlocksOnFirstFailure(t *testing.T) {
	v := &View{Queue: []QueuedJob{qjob(1, 1, 300, 16), qjob(2, 1, 100, 16)}}
	try, attempts := tryScript(map[int]bool{1: false})
	SJF{}.Schedule(v, try)
	if len(*attempts) != 1 || (*attempts)[0] != 1 {
		t.Errorf("attempts = %v, want just the shortest job", *attempts)
	}
}

func TestEASYStartsHeadsThenBackfills(t *testing.T) {
	cl := testCluster(t)
	// Occupy every 32MB node so a 32MB-estimate head blocks.
	if _, ok := cl.Allocate(4, 32); !ok {
		t.Fatal("setup allocation failed")
	}
	head := qjob(1, 4, 100, 30)     // needs all four 32MB nodes: blocked until 100
	shortFit := qjob(2, 2, 10, 16)  // ends before shadow, fits 24MB pool
	longFit := qjob(3, 2, 5000, 16) // would outlive the shadow AND exceed extra
	v := &View{
		Now:     0,
		Queue:   []QueuedJob{head, shortFit, longFit},
		Cluster: cl,
		Running: []RunningJob{{
			Job:         &trace.Job{ID: 99, Nodes: 4, ReqTime: 100},
			ExpectedEnd: 100, Nodes: 4, MinMem: 32,
		}},
	}
	try, attempts := tryScript(map[int]bool{0: false, 1: true, 2: true})
	EASY{}.Schedule(v, try)
	// Head attempted (blocked), then only the short candidate.
	if len(*attempts) < 2 || (*attempts)[0] != 0 || (*attempts)[1] != 1 {
		t.Fatalf("attempts = %v, want head then short backfill", *attempts)
	}
	for _, a := range *attempts {
		if a == 2 {
			t.Error("EASY backfilled a job that would delay the head's reservation")
		}
	}
}

func TestEASYWindowLimitsCandidates(t *testing.T) {
	cl := testCluster(t)
	if _, ok := cl.Allocate(4, 32); !ok {
		t.Fatal("setup allocation failed")
	}
	queue := []QueuedJob{qjob(1, 4, 100, 30)}
	for i := 2; i <= 6; i++ {
		queue = append(queue, qjob(i, 1, 10, 16))
	}
	v := &View{
		Queue: queue, Cluster: cl,
		Running: []RunningJob{{
			Job:         &trace.Job{ID: 99, Nodes: 4, ReqTime: 100},
			ExpectedEnd: 100, Nodes: 4, MinMem: 32,
		}},
	}
	try, attempts := tryScript(map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true})
	EASY{Window: 2}.Schedule(v, try)
	// Head + at most 2 backfill candidates examined.
	if len(*attempts) > 3 {
		t.Errorf("attempts = %v, window 2 should cap backfill candidates", *attempts)
	}
}

func TestPolicyNames(t *testing.T) {
	if (FCFS{}).Name() != "fcfs" || (SJF{}).Name() != "sjf" || (EASY{}).Name() != "easy-backfill" {
		t.Error("policy names changed; reports depend on them")
	}
}
