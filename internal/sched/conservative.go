package sched

import (
	"sort"

	"overprov/internal/units"
)

// Conservative is conservative backfilling: unlike EASY, *every* queued
// job receives a reservation in arrival order, and a job may start out
// of order only if doing so delays none of the reservations ahead of it.
// It trades EASY's throughput for strictly stronger fairness guarantees
// (no job is ever delayed by a later arrival), which makes it the
// natural companion when resource estimation already shrinks the queue.
//
// Reservations are computed on node counts against the running jobs'
// user runtime estimates, exactly like EASY; memory shape is enforced by
// the engine's actual allocation attempt at start time.
type Conservative struct {
	// Window bounds how many queued jobs are processed per round;
	// 0 means the whole visible queue.
	Window int
}

// Name implements Policy.
func (Conservative) Name() string { return "conservative-backfill" }

// Schedule walks the queue in order, maintaining an availability
// profile. Jobs whose earliest feasible slot is "now" are started (via
// try); all others are reserved at their slot, constraining everyone
// behind them.
func (c Conservative) Schedule(v *View, try TryFunc) {
	prof := newProfile(v)
	limit := len(v.Queue)
	if c.Window > 0 && c.Window < limit {
		limit = c.Window
	}
	for pos := 0; pos < limit; pos++ {
		job := v.Queue[pos].Job
		dur := v.Queue[pos].PredictedRuntime()
		if dur <= 0 {
			dur = units.Seconds(1)
		}
		start := prof.earliestSlot(v.Now, job.Nodes, dur)
		if start <= v.Now && try(pos) {
			prof.reserve(v.Now, job.Nodes, dur)
			continue
		}
		if start <= v.Now {
			// The profile said "now" but the allocation failed (memory
			// shape or an unrunnable job). Stay conservative: push the
			// reservation to the next profile breakpoint so later
			// candidates cannot assume these nodes.
			start = prof.nextBreak(v.Now)
		}
		prof.reserve(start, job.Nodes, dur)
	}
}

// profile is a step function time → free nodes, represented as sorted
// breakpoints. breakpoints[i] holds the free-node count from its time
// until the next breakpoint; the last segment extends to infinity.
type profile struct {
	times []units.Seconds
	free  []int
}

// newProfile builds the availability profile from the cluster's current
// free nodes plus the expected completions of running jobs. It consumes
// the engine-sorted RunningByEnd list when available, so the per-round
// sort of all releases disappears; coincident releases merge into one
// breakpoint either way, which makes the profile independent of tie
// order among equal expected ends.
func newProfile(v *View) *profile {
	ends := v.runningByEnd()
	p := &profile{
		times: make([]units.Seconds, 1, len(ends)+1),
		free:  make([]int, 1, len(ends)+1),
	}
	p.times[0] = v.Now
	p.free[0] = v.Cluster.FreeNodes()
	for _, r := range ends {
		at := r.ExpectedEnd
		if at < v.Now {
			// Overdue per the user's estimate; treat as releasing now —
			// optimistic, but conservative backfilling re-plans every
			// round so the error self-corrects. Clamping a list sorted
			// by ExpectedEnd keeps the release times nondecreasing.
			at = v.Now
		}
		last := len(p.times) - 1
		if at == p.times[last] {
			p.free[last] += r.Nodes
			continue
		}
		p.times = append(p.times, at)
		p.free = append(p.free, p.free[last]+r.Nodes)
	}
	return p
}

// earliestSlot returns the earliest time ≥ from at which n nodes are
// free continuously for dur.
func (p *profile) earliestSlot(from units.Seconds, n int, dur units.Seconds) units.Seconds {
	for i := range p.times {
		start := p.times[i]
		if start < from {
			start = from
		}
		if i+1 < len(p.times) && p.times[i+1] <= start {
			continue // segment entirely before from
		}
		if p.free[i] < n {
			continue
		}
		// Check the window [start, start+dur) across segments.
		end := start + dur
		ok := true
		for k := i; k < len(p.times); k++ {
			segStart := p.times[k]
			if segStart >= end {
				break
			}
			if p.free[k] < n {
				// Not enough nodes somewhere inside the window; restart
				// the search after this deficient segment.
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	// Beyond the last breakpoint everything running has released; the
	// last segment's capacity is the machine's best. If even that is
	// insufficient the job is unrunnable by node count; report the far
	// future so callers reserve without blocking others.
	return p.times[len(p.times)-1]
}

// nextBreak returns the first breakpoint strictly after t, or t if none
// exists.
func (p *profile) nextBreak(t units.Seconds) units.Seconds {
	for _, bt := range p.times {
		if bt > t {
			return bt
		}
	}
	return t
}

// reserve subtracts n nodes from the profile over [start, start+dur),
// inserting breakpoints as needed.
func (p *profile) reserve(start units.Seconds, n int, dur units.Seconds) {
	end := start + dur
	p.insertBreak(start)
	p.insertBreak(end)
	for i := range p.times {
		if p.times[i] >= start && p.times[i] < end {
			p.free[i] -= n
		}
	}
}

// insertBreak splits the profile at time t (no-op when a breakpoint
// already exists or t precedes the profile).
func (p *profile) insertBreak(t units.Seconds) {
	i := sort.Search(len(p.times), func(k int) bool { return p.times[k] >= t })
	if i < len(p.times) && p.times[i] == t {
		return
	}
	if i == 0 {
		return // before the profile start: segment 0 already covers it
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = p.free[i-1]
}
