// Package sched defines the scheduling policies that decide which queued
// jobs to dispatch. The paper's simulations use strict first-come
// first-served with no preemption; EASY backfilling and shortest-job
// first implement the "more aggressive scheduling policies" its §3.1
// leaves as future work.
//
// The resource estimator is deliberately outside this package: the paper
// stresses that estimation "is independent and can be integrated with
// different scheduling policies". A policy only decides *which* jobs to
// attempt; the simulation engine estimates, allocates, and reports back
// whether each attempt started.
package sched

import (
	"sort"

	"overprov/internal/cluster"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// QueuedJob is a waiting job as a policy sees it.
type QueuedJob struct {
	// Job is the underlying trace record.
	Job *trace.Job
	// Estimate is the capacity the estimator currently assigns the job;
	// the engine fills it (at least for the queue head) before invoking
	// the policy so reservation arithmetic can use it.
	Estimate units.MemSize
	// RuntimeEstimate is the predicted runtime the engine assigns the
	// job (the user's ReqTime, or a learned prediction when a runtime
	// estimator is configured); zero means "use Job.ReqTime".
	RuntimeEstimate units.Seconds
	// Retry reports whether the job is back at the head after a failed
	// execution (the paper returns failed jobs to the head of the
	// queue).
	Retry bool
}

// PredictedRuntime returns the runtime the scheduler should plan with:
// the engine's prediction when present, else the user's estimate.
func (q QueuedJob) PredictedRuntime() units.Seconds {
	if q.RuntimeEstimate > 0 {
		return q.RuntimeEstimate
	}
	return q.Job.ReqTime
}

// RunningJob is an executing job as a policy sees it.
type RunningJob struct {
	Job *trace.Job
	// Start is when the job began executing.
	Start units.Seconds
	// ExpectedEnd is the engine's best public knowledge of when the job
	// will finish: start + the user's runtime estimate (policies must
	// not see true runtimes or failure times).
	ExpectedEnd units.Seconds
	// Nodes is the allocated node count.
	Nodes int
	// MinMem is the smallest per-node capacity among its nodes.
	MinMem units.MemSize
}

// View is the scheduling state passed to a policy at each scheduling
// point.
type View struct {
	Now units.Seconds
	// Queue is the wait queue in priority order (head first).
	Queue []QueuedJob
	// Running lists executing jobs.
	Running []RunningJob
	// RunningByEnd, when non-nil, is Running sorted ascending by
	// ExpectedEnd. The engine maintains it incrementally across rounds
	// so backfill policies do not re-sort every release list per round;
	// policies must treat it as read-only and fall back to sorting
	// Running themselves when it is nil (e.g. hand-built views in
	// tests).
	RunningByEnd []RunningJob
	// Cluster exposes current free capacity.
	Cluster *cluster.Cluster
}

// runningByEnd returns the running jobs sorted ascending by ExpectedEnd,
// using the engine-maintained cache when present.
func (v *View) runningByEnd() []RunningJob {
	if v.RunningByEnd != nil {
		return v.RunningByEnd
	}
	ends := append([]RunningJob(nil), v.Running...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].ExpectedEnd < ends[j].ExpectedEnd })
	return ends
}

// TryFunc attempts to dispatch the queued job at the given queue
// position (an index into View.Queue). It returns true when the job was
// allocated and started. Positions remain valid for the whole Schedule
// call even after earlier positions start; attempting a position twice
// is an error the engine reports via false.
type TryFunc func(pos int) bool

// Policy selects jobs to dispatch at a scheduling point by calling try.
// Implementations must be deterministic functions of the view.
type Policy interface {
	Name() string
	Schedule(v *View, try TryFunc)
}

// FCFS is the paper's policy: strict first-come first-served. Only the
// queue head may start; if it does, the next head is considered, and the
// first head that cannot start blocks the queue.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Schedule starts queue heads until one fails to fit.
func (FCFS) Schedule(v *View, try TryFunc) {
	for pos := range v.Queue {
		if !try(pos) {
			return
		}
	}
}

// SJF dispatches the job with the shortest user runtime estimate first,
// blocking (like FCFS) when its best candidate does not fit. Ties are
// broken by queue order, keeping the policy deterministic and
// starvation-bounded on finite traces.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Schedule attempts jobs in ascending requested-runtime order until one
// fails to start.
func (SJF) Schedule(v *View, try TryFunc) {
	entries := make([]sjfEntry, len(v.Queue))
	for i := range entries {
		entries[i] = sjfEntry{key: v.Queue[i].PredictedRuntime(), pos: int32(i)}
	}
	stableSortByKey(entries)
	for _, e := range entries {
		if !try(int(e.pos)) {
			return
		}
	}
}

// sjfEntry pairs a queue position with its precomputed sort key, so the
// sort compares plain floats instead of re-deriving the runtime estimate
// at every comparison.
type sjfEntry struct {
	key units.Seconds
	pos int32
}

// stableSortByKey sorts entries by key ascending, equal keys keeping
// their original (queue) order — a bottom-up merge sort. The stable
// permutation of a sequence is unique, so this yields exactly the order
// sort.SliceStable produced, without the reflection-based swapping and
// O(n log n) comparator closure calls.
func stableSortByKey(a []sjfEntry) {
	n := len(a)
	if n < 2 {
		return
	}
	buf := make([]sjfEntry, n)
	src, dst := a, buf
	for width := 1; width < n; width *= 2 {
		for i := 0; i < n; i += 2 * width {
			mid, hi := i+width, i+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			l, r, o := i, mid, i
			for l < mid && r < hi {
				// Strict < keeps the left run first on ties: stability.
				if src[r].key < src[l].key {
					dst[o] = src[r]
					r++
				} else {
					dst[o] = src[l]
					l++
				}
				o++
			}
			for l < mid {
				dst[o] = src[l]
				l++
				o++
			}
			for r < hi {
				dst[o] = src[r]
				r++
				o++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// EASY is EASY backfilling: the queue head gets a reservation at the
// earliest time enough nodes will be free (per the running jobs' user
// runtime estimates), and later jobs may start out of order only if they
// cannot delay that reservation — either they finish (per their own user
// estimate) before the reservation, or they fit into nodes the head will
// not need.
//
// Reservation arithmetic is done on node counts eligible for the head's
// estimated memory; the candidate's own fit is verified by the actual
// allocation attempt, so heterogeneity never causes a false start.
type EASY struct {
	// Window bounds how many queued jobs may be examined for
	// backfilling; 0 means the whole queue.
	Window int
}

// Name implements Policy.
func (EASY) Name() string { return "easy-backfill" }

// Schedule implements the EASY algorithm.
func (e EASY) Schedule(v *View, try TryFunc) {
	started := make([]bool, len(v.Queue))
	head := 0
	// Phase 1: start consecutive heads while they fit.
	for head < len(v.Queue) {
		if !try(head) {
			break
		}
		started[head] = true
		head++
	}
	if head >= len(v.Queue) {
		return
	}
	// Phase 2: reservation for the blocked head.
	headJob := v.Queue[head]
	shadow, extra := e.reservation(v, started, headJob)

	limit := len(v.Queue)
	if e.Window > 0 && head+1+e.Window < limit {
		limit = head + 1 + e.Window
	}
	for pos := head + 1; pos < limit; pos++ {
		cand := v.Queue[pos]
		endsBeforeShadow := v.Now+cand.PredictedRuntime() <= shadow
		fitsExtra := cand.Job.Nodes <= extra
		if !endsBeforeShadow && !fitsExtra {
			continue
		}
		if try(pos) {
			started[pos] = true
			if !endsBeforeShadow {
				extra -= cand.Job.Nodes
			}
		}
	}
}

// reservation computes the head's shadow time (earliest time enough
// eligible nodes are free) and the extra eligible nodes left over at
// that time.
func (e EASY) reservation(v *View, started []bool, head QueuedJob) (units.Seconds, int) {
	eligible := 0
	for i, np := 0, v.Cluster.NumPools(); i < np; i++ {
		if p := v.Cluster.PoolAt(i); head.Estimate.Fits(p.Mem) {
			eligible += p.Free()
		}
	}
	if eligible >= head.Job.Nodes {
		// The head fit by node count but its allocation attempt failed
		// (memory shape); be conservative: no backfilling beyond
		// shorter-than-now jobs.
		return v.Now, 0
	}
	// Walk running jobs in expected-end order, accumulating released
	// eligible nodes until the head fits.
	ends := v.runningByEnd()
	free := eligible
	for _, r := range ends {
		if head.Estimate.Fits(r.MinMem) {
			free += r.Nodes
		}
		if free >= head.Job.Nodes {
			return r.ExpectedEnd, free - head.Job.Nodes
		}
	}
	// Even a drained cluster cannot fit the head (should have been
	// rejected); suppress backfilling.
	return v.Now, 0
}
