module overprov

go 1.22
