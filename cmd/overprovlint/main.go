// Command overprovlint is the repo's multichecker: it runs the four
// custom analyzers from internal/analysis (memsafe, lockcheck, detrand,
// errfeedback) over module packages and exits non-zero on any finding.
// It is built purely on the standard library — the stock vet passes are
// not linked in (that would need golang.org/x/tools), so the CI gate
// pairs it with `go vet ./...`:
//
//	go build ./cmd/overprovlint && ./overprovlint ./... && go vet ./...
//
// Patterns resolve against the enclosing module: "./..." (the default)
// means every package, "./internal/..." a subtree, and "./internal/sim"
// or "overprov/internal/sim" a single package. Test files are not
// analyzed; the invariants bind the shipped code, and tests poke
// estimator internals deliberately.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"overprov/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: overprovlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the overprov static-analysis suite; defaults to ./...\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "overprovlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	moduleDir, modulePath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expand(patterns, cwd, moduleDir, modulePath)
	if err != nil {
		return err
	}

	loader := analysis.NewLoader(moduleDir, modulePath)
	found := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		diags, err := analysis.Run(loader.Fset, pkg, analysis.Suite())
		if err != nil {
			return err
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		os.Exit(1)
	}
	return nil
}

// expand resolves package patterns to module import paths, preserving
// pattern order while deduplicating.
func expand(patterns []string, cwd, moduleDir, modulePath string) ([]string, error) {
	all, err := analysis.ListModulePackages(moduleDir, modulePath)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." && recursive {
			base = "./"
		}
		// Relative patterns anchor at cwd; bare ones are import paths.
		anchor := base
		if strings.HasPrefix(base, "./") || base == "." || strings.HasPrefix(base, "../") {
			abs := filepath.Join(cwd, base)
			rel, err := filepath.Rel(moduleDir, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q escapes module %s", pat, modulePath)
			}
			if rel == "." {
				anchor = modulePath
			} else {
				anchor = modulePath + "/" + filepath.ToSlash(rel)
			}
		}
		matched := false
		for _, p := range all {
			if p == anchor || (recursive && strings.HasPrefix(p, anchor+"/")) {
				add(p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
