// Command overprovlint is the repo's multichecker: it runs the custom
// analyzers from internal/analysis (memsafe, lockcheck, detrand,
// errfeedback, lockorder, walorder, fsyncrename) over module packages
// and exits non-zero on any finding. It is built purely on the
// standard library — the stock vet passes are not linked in (that
// would need golang.org/x/tools), so the CI gate pairs it with
// `go vet ./...`:
//
//	go build ./cmd/overprovlint && ./overprovlint ./... && go vet ./...
//
// Patterns resolve against the enclosing module: "./..." (the default)
// means every package, "./internal/..." a subtree, and "./internal/sim"
// or "overprov/internal/sim" a single package.
//
// The module is loaded and type-checked once and the package set is
// shared by every analyzer, together with one module-wide call-graph
// summary — the flow-sensitive analyzers need cross-package lock
// facts, and the AST-level ones get a free speedup (the old binary
// re-loaded the module per package pattern).
//
// Flags:
//
//	-list               list the analyzers and exit
//	-analyzers a,b,...  run only the named analyzers
//	-json               emit diagnostics as a JSON array on stdout
//	-tests              include _test.go files (package-local analyzers
//	                    only: detrand and errfeedback are the intended
//	                    pairing — see Loader.LoadTests)
//	-time               report load/analysis wall-clock on stderr
//
// By default test files are not analyzed; the invariants bind the
// shipped code, and tests poke estimator internals deliberately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"overprov/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	tests := flag.Bool("tests", false, "include _test.go files in the analyzed packages")
	timing := flag.Bool("time", false, "report load/analysis wall-clock on stderr")
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: overprovlint [-list] [-json] [-tests] [-time] [-analyzers a,b] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the overprov static-analysis suite; defaults to ./...\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*names)
	if err == nil {
		err = run(flag.Args(), analyzers, *jsonOut, *tests, *timing)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "overprovlint:", err)
		os.Exit(2)
	}
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	suite := analysis.Suite()
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonDiagnostic is the -json wire shape, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(patterns []string, analyzers []*analysis.Analyzer, jsonOut, tests, timing bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	moduleDir, modulePath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expand(patterns, cwd, moduleDir, modulePath)
	if err != nil {
		return err
	}

	// Load once; every analyzer shares the package set and one module
	// summary.
	loader := analysis.NewLoader(moduleDir, modulePath)
	start := time.Now()
	var pkgs []*analysis.Package
	for _, path := range paths {
		if tests {
			ps, err := loader.LoadTests(path)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, ps...)
		} else {
			pkg, err := loader.Load(path)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	loaded := time.Now()

	sum := analysis.Summarize(loader.Fset, pkgs)
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunWithSummary(loader.Fset, pkg, analyzers, sum)
		if err != nil {
			return err
		}
		all = append(all, diags...)
	}
	if timing {
		fmt.Fprintf(os.Stderr, "overprovlint: %d packages loaded in %v, analyzed in %v\n",
			len(pkgs), loaded.Sub(start).Round(time.Millisecond), time.Since(loaded).Round(time.Millisecond))
	}

	for i := range all {
		if rel, err := filepath.Rel(cwd, all[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			all[i].Pos.Filename = rel
		}
	}
	if jsonOut {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
	return nil
}

// expand resolves package patterns to module import paths, preserving
// pattern order while deduplicating.
func expand(patterns []string, cwd, moduleDir, modulePath string) ([]string, error) {
	all, err := analysis.ListModulePackages(moduleDir, modulePath)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." && recursive {
			base = "./"
		}
		// Relative patterns anchor at cwd; bare ones are import paths.
		anchor := base
		if strings.HasPrefix(base, "./") || base == "." || strings.HasPrefix(base, "../") {
			abs := filepath.Join(cwd, base)
			rel, err := filepath.Rel(moduleDir, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q escapes module %s", pat, modulePath)
			}
			if rel == "." {
				anchor = modulePath
			} else {
				anchor = modulePath + "/" + filepath.ToSlash(rel)
			}
		}
		matched := false
		for _, p := range all {
			if p == anchor || (recursive && strings.HasPrefix(p, anchor+"/")) {
				add(p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
