// Command sweep regenerates the paper's sweep figures: utilization
// versus load (Figure 5), the slowdown ratio (Figure 6), and the
// second-pool memory sweep (Figure 8) with its conservatism statistics.
//
// Usage:
//
//	sweep -fig5 -fig6 -small     # quick load sweep
//	sweep -fig8                  # full 1–32MB cluster sweep (slow)
//	sweep -fig8 -csv > fig8.csv  # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"overprov/internal/experiments"
	"overprov/internal/profiling"
	"overprov/internal/report"
)

func main() {
	var (
		small      = flag.Bool("small", false, "use the reduced synthetic trace")
		fig5       = flag.Bool("fig5", false, "utilization vs load")
		fig6       = flag.Bool("fig6", false, "slowdown ratio vs load")
		fig8       = flag.Bool("fig8", false, "utilization ratio vs second-pool memory")
		easy       = flag.Bool("easy", false, "rerun the load sweep under EASY backfilling (future work)")
		robust     = flag.Bool("robustness", false, "Figure 5 gain across several trace seeds with a bootstrap CI")
		generality = flag.Bool("generality", false, "Figure 5 pipeline on the SP2-like second preset")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers    = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS); results are identical at any count")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)
	if !*fig5 && !*fig6 && !*fig8 && !*easy && !*robust && !*generality {
		*fig5, *fig6, *fig8 = true, true, true
	}

	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	s := experiments.FullScale()
	if *small {
		s = experiments.SmallScale()
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteASCII(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	if *fig5 || *fig6 {
		r, err := experiments.LoadSweep(s)
		if err != nil {
			fatal(err)
		}
		if *fig5 {
			emit(r.Figure5Table())
		}
		if *fig6 {
			emit(r.Figure6Table())
		}
	}
	if *easy {
		r, err := experiments.BackfillLoadSweep(s)
		if err != nil {
			fatal(err)
		}
		t5 := r.Figure5Table()
		t5.Title = "Future work — " + t5.Title + " under EASY backfilling"
		emit(t5)
		t6 := r.Figure6Table()
		t6.Title = "Future work — " + t6.Title + " under EASY backfilling"
		emit(t6)
	}
	if *robust {
		r, err := experiments.SeedRobustness(s, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			fatal(err)
		}
		emit(r.Table())
	}
	if *generality {
		jobs := 0 // full preset
		if *small {
			jobs = 6000
		}
		r, err := experiments.Generality(jobs, s.Loads, s.Seed)
		if err != nil {
			fatal(err)
		}
		t5 := r.Figure5Table()
		t5.Title = "Generality — " + t5.Title + " on the SP2-like preset"
		emit(t5)
	}
	if *fig8 {
		r, err := experiments.Figure8(s)
		if err != nil {
			fatal(err)
		}
		emit(r.Table())
		c := r.Conservatism()
		fmt.Printf("conservatism: max failure rate %s%%, lowered jobs %s%%–%s%%\n",
			report.FormatFloat(100*c.MaxResourceFailureRate),
			report.FormatFloat(100*c.MinLoweredFraction),
			report.FormatFloat(100*c.MaxLoweredFraction))
		if best, err := r.BestSecondPool(); err == nil {
			fmt.Printf("capacity planning: best second pool %v (utilization ratio %s)\n",
				best.SecondPoolMem, report.FormatFloat(best.Ratio))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
