// Command lanlgen generates the calibrated synthetic LANL-CM5-like
// workload and writes it in Standard Workload Format.
//
// Usage:
//
//	lanlgen                      # full-scale trace (122,055 jobs) to stdout
//	lanlgen -small -out cm5.swf  # test-scale trace to a file
//	lanlgen -out cm5.swfb        # binary trace cache (fast reload)
//	lanlgen -jobs 50000 -seed 9  # custom size and seed
package main

import (
	"flag"
	"fmt"
	"os"

	"overprov/internal/synth"
	"overprov/internal/trace"
)

func main() {
	var (
		small   = flag.Bool("small", false, "generate the reduced test-scale trace")
		jobs    = flag.Int("jobs", 0, "override the number of jobs")
		grps    = flag.Int("groups", 0, "override the number of similarity groups")
		seed    = flag.Uint64("seed", 0, "override the generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print calibration statistics to stderr")
		archive = flag.Bool("archive-header", false, "emit the conventional Parallel Workloads Archive header block")
	)
	flag.Parse()

	cfg := synth.DefaultConfig()
	if *small {
		cfg = synth.SmallConfig()
	}
	if *jobs > 0 {
		cfg.Jobs = *jobs
	}
	if *grps > 0 {
		cfg.Groups = *grps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	tr, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if *archive {
		tr.Header = trace.StandardHeader(tr,
			"Synthetic Thinking Machines CM-5", "overprov reproduction")
	}
	if *stats {
		s := trace.ComputeStats(tr)
		fmt.Fprintf(os.Stderr,
			"jobs=%d users=%d span=%v mean-nodes=%.1f P(ratio>=2)=%.3f\n",
			s.Jobs, s.Users, s.Span, s.MeanNodes, s.OverprovAtLeast2)
	}

	if *out != "" {
		// WriteFile picks the encoder by extension: a .swfb path gets
		// the binary format, anything else SWF text.
		if err := trace.WriteFile(*out, tr); err != nil {
			fatal(err)
		}
		return
	}
	if err := trace.WriteSWF(os.Stdout, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lanlgen:", err)
	os.Exit(1)
}
