package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/units"
)

// testDaemon stands up the real serving stack — sharded estimator, split
// locking, batch endpoints — behind httptest, so the generator is tested
// against exactly what it will measure.
func testDaemon(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	cl, err := cluster.New(cluster.Spec{Nodes: 1 << 16, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{
		Alpha: 2, Round: cl,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cluster: cl, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func testConfig(addr string, batch int) config {
	return config{
		Addr:     addr,
		Proto:    "http",
		Clients:  4,
		Duration: 150 * time.Millisecond,
		Batch:    batch,
		Users:    5, Apps: 3, Nodes: 1,
		MemMB: 32, ReqTimeS: 60,
		FailEvery: 7,
	}
}

func TestRunBatchMode(t *testing.T) {
	ts, srv := testDaemon(t)
	rep, err := run(testConfig(ts.URL, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 {
		t.Fatalf("HTTP errors: %d\n%s", rep.HTTPErrors, rep)
	}
	if rep.Submitted == 0 || rep.Started == 0 || rep.Completed == 0 {
		t.Fatalf("no work done:\n%s", rep)
	}
	if rep.Completed > rep.Started || rep.Started > rep.Submitted {
		t.Errorf("counter ordering broken:\n%s", rep)
	}
	if len(rep.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	p50, p99 := rep.Latencies.percentile(0.5), rep.Latencies.percentile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles broken: p50=%v p99=%v", p50, p99)
	}
	// The generator's view agrees with the daemon's.
	m := srv.Metrics()
	if m.FeedbackEvents != uint64(rep.Completed) {
		t.Errorf("daemon saw %d feedback events, generator delivered %d", m.FeedbackEvents, rep.Completed)
	}
	if int(m.Estimator.Groups) > 5*3 {
		t.Errorf("estimator learned %d groups, want at most users×apps = 15", m.Estimator.Groups)
	}
}

func TestRunSingleMode(t *testing.T) {
	ts, _ := testDaemon(t)
	rep, err := run(testConfig(ts.URL, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 || rep.Completed == 0 {
		t.Fatalf("single-mode run failed:\n%s", rep)
	}
	// Per-job endpoints: one submit + one complete request per lifecycle.
	if len(rep.Latencies) < rep.Submitted+rep.Completed {
		t.Errorf("latency samples %d < requests %d", len(rep.Latencies), rep.Submitted+rep.Completed)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig("http://x", 4)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*config){
		"addr":     func(c *config) { c.Addr = "" },
		"clients":  func(c *config) { c.Clients = 0 },
		"duration": func(c *config) { c.Duration = 0 },
		"batch":    func(c *config) { c.Batch = 0 },
		"users":    func(c *config) { c.Users = 0 },
		"apps":     func(c *config) { c.Apps = -1 },
		"fail":     func(c *config) { c.FailEvery = -1 },
		"retries":  func(c *config) { c.Retries = -1 },
		"base":     func(c *config) { c.Retries = 3; c.RetryBase = 0 },
		"max":      func(c *config) { c.Retries = 3; c.RetryBase = time.Second; c.RetryMax = time.Millisecond },
	} {
		c := good
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}

// flakyFront simulates a daemon mid-restart: the first fail requests
// get 503, then traffic flows to the real handler. Connection-refused
// failures take the same retry path; 503 is the variant an httptest
// server can stage deterministically.
type flakyFront struct {
	mu   sync.Mutex
	fail int
	next http.Handler
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	failing := f.fail > 0
	if failing {
		f.fail--
	}
	f.mu.Unlock()
	if failing {
		http.Error(w, "restarting", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestRetryAbsorbsTransientErrors: a burst of 503s at the front of the
// run must surface as retries, not hard errors.
func TestRetryAbsorbsTransientErrors(t *testing.T) {
	ts, srv := testDaemon(t)
	front := &flakyFront{fail: 6, next: srv.Handler()}
	flaky := httptest.NewServer(front)
	t.Cleanup(flaky.Close)

	cfg := testConfig(flaky.URL, 8)
	cfg.Retries = 8
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 10 * time.Millisecond
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 {
		t.Fatalf("transient 503s counted as hard errors:\n%s", rep)
	}
	if rep.Retries < 6 {
		t.Fatalf("retries = %d, want at least the 6 injected failures\n%s", rep.Retries, rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("no work done after the flaky front cleared:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "retries") {
		t.Error("summary does not report the retry count")
	}
	_ = ts
}

// TestRetriesExhausted: a permanently failing daemon still produces
// hard errors once the budget runs out — retrying must not mask a real
// outage forever.
func TestRetriesExhausted(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	cfg := testConfig(dead.URL, 1)
	cfg.Clients = 1
	cfg.Duration = 80 * time.Millisecond
	cfg.Retries = 2
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 2 * time.Millisecond
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors == 0 {
		t.Fatalf("permanent 500s never became hard errors:\n%s", rep)
	}
	if rep.Retries == 0 {
		t.Fatalf("no retries attempted before giving up:\n%s", rep)
	}
	if rep.Completed != 0 {
		t.Fatalf("completed %d jobs against a dead daemon", rep.Completed)
	}
}

// TestNonRetryableNotRetried: 4xx responses are the client's fault and
// must fail immediately, with zero retries burned.
func TestNonRetryableNotRetried(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	}))
	t.Cleanup(bad.Close)
	cfg := testConfig(bad.URL, 1)
	cfg.Clients = 1
	cfg.Duration = 30 * time.Millisecond
	cfg.Retries = 5
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 2 * time.Millisecond
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 {
		t.Fatalf("burned %d retries on 400 responses", rep.Retries)
	}
	if rep.HTTPErrors == 0 {
		t.Fatal("400 responses not reported as errors")
	}
}

// retryWorker builds a bare worker against base with a small retry
// budget, for driving post directly.
func retryWorker(base string) *worker {
	return &worker{
		cfg: config{
			Addr: base, Clients: 1, Duration: time.Second, Batch: 1,
			Users: 1, Apps: 1, Nodes: 1, MemMB: 32, ReqTimeS: 60,
			Retries: 3, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		},
		base:     base,
		stats:    &clientStats{},
		rng:      rand.New(rand.NewSource(1)),
		deadline: time.Now().Add(time.Second),
	}
}

// TestSubmitRetriesDialErrors: connection refused proves the request
// never reached the daemon, so even a replay-unsafe submit retries it.
func TestSubmitRetriesDialErrors(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close() // nothing listens: every attempt is a dial error
	w := retryWorker(url)
	client := &http.Client{Timeout: time.Second}
	if ok := w.post(client, "/api/v1/jobs", map[string]any{}, nil, http.StatusCreated, false); ok {
		t.Fatal("post against a closed port reported success")
	}
	if w.stats.retries != w.cfg.Retries {
		t.Errorf("retries = %d, want the full budget %d (dial errors are replay-safe)",
			w.stats.retries, w.cfg.Retries)
	}
	if w.stats.httpErrors != 1 {
		t.Errorf("httpErrors = %d, want 1", w.stats.httpErrors)
	}
}

// TestSubmitNotReplayedAfterAmbiguousFailure: a transport error after
// the request was written (the server aborts the exchange mid-flight)
// may mean the daemon already applied the submit; replaying it could
// double-submit, so the generator must fail hard with zero retries.
func TestSubmitNotReplayedAfterAmbiguousFailure(t *testing.T) {
	aborter := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler) // connection cut after the request arrived
	}))
	t.Cleanup(aborter.Close)
	w := retryWorker(aborter.URL)
	client := &http.Client{Timeout: time.Second}
	if ok := w.post(client, "/api/v1/jobs", map[string]any{}, nil, http.StatusCreated, false); ok {
		t.Fatal("aborted submit reported success")
	}
	if w.stats.retries != 0 {
		t.Errorf("replay-unsafe submit retried %d times after a post-write failure", w.stats.retries)
	}
	if w.stats.httpErrors != 1 {
		t.Errorf("httpErrors = %d, want 1", w.stats.httpErrors)
	}
}

// TestCompleteRetriesAmbiguousFailure: completions are replay-safe (a
// duplicate is rejected with 409, nothing trains twice), so the same
// post-write failure is retried.
func TestCompleteRetriesAmbiguousFailure(t *testing.T) {
	aborter := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(aborter.Close)
	w := retryWorker(aborter.URL)
	client := &http.Client{Timeout: time.Second}
	if ok := w.post(client, "/api/v1/jobs/1/complete", map[string]any{"success": true}, nil, http.StatusOK, true); ok {
		t.Fatal("aborted complete reported success")
	}
	if w.stats.retries != w.cfg.Retries {
		t.Errorf("retries = %d, want the full budget %d (completions are replay-safe)",
			w.stats.retries, w.cfg.Retries)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var empty latencySample
	if empty.percentile(0.5) != 0 {
		t.Error("empty sample should report 0")
	}
	one := latencySample{5 * time.Millisecond}
	if one.percentile(0) != 5*time.Millisecond || one.percentile(1) != 5*time.Millisecond {
		t.Error("single sample percentiles")
	}
	four := latencySample{1, 2, 3, 4}
	if four.percentile(1) != 4 || four.percentile(0) != 1 {
		t.Errorf("bounds: min=%v max=%v", four.percentile(0), four.percentile(1))
	}
}

// TestRunMultiTargetRoundRobin checks -addrs: clients spread over every
// listed endpoint, so both daemons see traffic from one run.
func TestRunMultiTargetRoundRobin(t *testing.T) {
	_, srvA := testDaemon(t)
	_, srvB := testDaemon(t)

	var hitsA, hitsB atomic.Int64
	countA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsA.Add(1)
		srvA.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(countA.Close)
	countB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsB.Add(1)
		srvB.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(countB.Close)

	cfg := testConfig("", 8)
	cfg.Addrs = countA.URL + " , " + countB.URL
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no jobs completed")
	}
	if hitsA.Load() == 0 || hitsB.Load() == 0 {
		t.Fatalf("round-robin left a target idle: A=%d B=%d", hitsA.Load(), hitsB.Load())
	}
}

// TestScrapeClusterWALStatsSums checks the multi-node -metrics-addr
// path: per-node counters are summed, a router's self-healing counters
// ride the same scrape (each endpoint kind serves only its own keys),
// and one bad endpoint fails the scrape rather than silently
// under-reporting.
func TestScrapeClusterWALStatsSums(t *testing.T) {
	mk := func(payload string) *httptest.Server {
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/api/v1/metrics" {
				http.NotFound(w, r)
				return
			}
			fmt.Fprint(w, payload)
		}))
		t.Cleanup(s.Close)
		return s
	}
	a := mk(`{"wal_records":100,"wal_syncs":10}`)
	b := mk(`{"wal_records":250,"wal_syncs":25}`)
	rtr := mk(`{"router_retries":7,"router_failovers":1,"router_degraded":3}`)
	got, err := scrapeClusterWALStats([]string{a.URL, b.URL, rtr.URL})
	if err != nil {
		t.Fatal(err)
	}
	want := walStats{Records: 350, Syncs: 35, Retries: 7, Failovers: 1, Degraded: 3}
	if got != want {
		t.Fatalf("summed stats = %+v, want %+v", got, want)
	}
	if _, err := scrapeClusterWALStats([]string{a.URL, "http://127.0.0.1:1"}); err == nil {
		t.Fatal("dead metrics endpoint did not fail the scrape")
	}
}

// TestConfigTargets pins the -addrs/-metrics-addr parsing rules.
func TestConfigTargets(t *testing.T) {
	c := config{Addr: "http://a"}
	if got := c.targets(); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("single-addr targets = %v", got)
	}
	c.Addrs = " http://a , http://b ,"
	if got := c.targets(); len(got) != 2 || got[1] != "http://b" {
		t.Fatalf("multi-addr targets = %v", got)
	}
	c.MetricsAddr = "http://m1,,http://m2"
	if got := c.metricsTargets(); len(got) != 2 {
		t.Fatalf("metrics targets = %v", got)
	}
	bad := testConfig("", 1)
	bad.Addr = ""
	if err := bad.validate(); err == nil {
		t.Fatal("empty address list accepted")
	}
	wires := testConfig("localhost:1", 1)
	wires.Proto = "wire"
	wires.Addrs = "localhost:1,http://nope"
	if err := wires.validate(); err == nil {
		t.Fatal("URL in wire -addrs accepted")
	}
}
