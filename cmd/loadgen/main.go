// Command loadgen drives a running schedd with a closed-loop synthetic
// workload: each client goroutine keeps exactly one request in flight —
// submit a window of jobs, report their completions, repeat — so
// offered load tracks service capacity and the measurement is the
// daemon's sustainable throughput, not a queue filling up.
//
// It is the measurement harness behind BENCH_3.json's serving numbers:
//
//	schedd -addr :8080 -shards 32 &
//	loadgen -addr http://localhost:8080 -clients 8 -duration 30s -batch 64
//
// With -batch 1 each job transition is its own HTTP request (the
// pre-batch protocol); larger values exercise the jobs:batch and
// complete:batch endpoints. Jobs cycle deterministically through
// -users × -apps similarity groups, so the estimator's group table and
// hit pattern are reproducible run to run.
//
// With -proto wire the same closed loop speaks the swp binary batch
// protocol (internal/wire) over one persistent TCP connection per
// client (schedd must run with -wire-addr; point -addr at it as
// host:port). Replay-safety classification matches HTTP: a submit
// frame that faulted after it was written fails hard (a replay could
// double-submit), completions retry through reconnects.
//
// Against a multi-node cluster, -addrs lists several endpoints (router
// replicas or the nodes themselves) and clients are assigned to them
// round-robin; -metrics-addr then takes the matching comma-separated
// debug listeners and sums WAL counters across the nodes:
//
//	loadgen -proto wire -addrs r0:8081,r1:8081 \
//	        -metrics-addr http://n0:6060,http://n1:6060,http://n2:6060
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.Addr, "addr", "http://localhost:8080", "schedd base URL (-proto http) or host:port (-proto wire)")
	flag.StringVar(&cfg.Addrs, "addrs", "",
		"comma-separated schedd endpoints; clients are assigned to them round-robin (overrides -addr)")
	flag.StringVar(&cfg.Proto, "proto", "http", "daemon protocol: http (JSON API) or wire (swp binary batches)")
	flag.IntVar(&cfg.Clients, "clients", 4, "closed-loop client goroutines")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measurement window")
	flag.IntVar(&cfg.Batch, "batch", 64, "jobs per request window (1 = per-job endpoints)")
	flag.IntVar(&cfg.CompleteBatch, "complete-batch", 0, "completions per request (0 = follow -batch, 1 = per-job endpoint); sets the WAL append-group size under -wal-group-commit")
	flag.StringVar(&cfg.MetricsAddr, "metrics-addr", "",
		"schedd -debug-addr base URL(s), comma-separated for a cluster; when set, report WAL fsyncs per completion summed across nodes")
	flag.IntVar(&cfg.Users, "users", 53, "distinct users cycled through")
	flag.IntVar(&cfg.Apps, "apps", 7, "distinct applications cycled through")
	flag.IntVar(&cfg.Nodes, "nodes", 1, "nodes requested per job")
	flag.Float64Var(&cfg.MemMB, "mem", 32, "requested memory per node (MB)")
	flag.Float64Var(&cfg.ReqTimeS, "req-time", 600, "requested runtime (s)")
	flag.IntVar(&cfg.FailEvery, "fail", 16, "every Nth completion reports failure (0 = never)")
	flag.IntVar(&cfg.Retries, "retries", 5, "retry attempts for transient failures (0 = fail hard)")
	flag.DurationVar(&cfg.RetryBase, "retry-base", 10*time.Millisecond, "first retry backoff (doubles per attempt)")
	flag.DurationVar(&cfg.RetryMax, "retry-max", time.Second, "backoff cap")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
}
