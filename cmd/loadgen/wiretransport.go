package main

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"overprov/internal/wire"
)

// wireConn is one worker's persistent swp connection. It lazily dials
// and re-dials after a fault; the connection survives across windows,
// which is the protocol's whole point — no per-request connection or
// header overhead.
type wireConn struct {
	addr    string
	c       net.Conn
	fr      *wire.Reader
	bw      *bufio.Writer
	enc     wire.Encoder
	version uint8
}

// ensure makes the connection usable, dialing and negotiating if
// needed. An error here is always pre-write: nothing of the caller's
// request has been sent, so retrying is unconditionally safe — the
// wire analogue of preWrite's dial classification.
func (wc *wireConn) ensure() error {
	if wc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", wc.addr, 10*time.Second)
	if err != nil {
		return err
	}
	fr := wire.NewReader(bufio.NewReader(c))
	bw := bufio.NewWriter(c)
	var enc wire.Encoder
	if _, err := bw.Write(enc.Hello(wire.Hello{Min: wire.VersionMin, Max: wire.VersionMax}, wire.VersionMin)); err != nil {
		_ = c.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = c.Close()
		return err
	}
	f, err := fr.ReadFrame()
	if err != nil {
		_ = c.Close()
		return err
	}
	if f.Type != wire.TypeHello {
		_ = c.Close()
		return fmt.Errorf("handshake rejected: %s", wire.DecodeError(f.Payload))
	}
	wc.c, wc.fr, wc.bw, wc.version = c, fr, bw, f.Version
	return nil
}

// reset tears the connection down after a fault; the next ensure
// re-dials.
func (wc *wireConn) reset() {
	if wc.c != nil {
		_ = wc.c.Close()
		wc.c, wc.fr, wc.bw = nil, nil, nil
	}
}

// exchange writes one frame and reads its reply. Any error after
// ensure succeeded is post-write: bytes of the request may have
// reached the daemon, so the caller must apply its replay-safety rule.
// The connection is reset on every error — a faulted stream cannot be
// trusted for framing.
func (wc *wireConn) exchange(frame []byte, want wire.FrameType) ([]wire.Result, error) {
	if _, err := wc.bw.Write(frame); err != nil {
		wc.reset()
		return nil, err
	}
	if err := wc.bw.Flush(); err != nil {
		wc.reset()
		return nil, err
	}
	f, err := wc.fr.ReadFrame()
	if err != nil {
		wc.reset()
		return nil, err
	}
	if f.Type == wire.TypeError {
		wc.reset()
		return nil, fmt.Errorf("server error: %s", wire.DecodeError(f.Payload))
	}
	if f.Type != want {
		wc.reset()
		return nil, fmt.Errorf("reply type %d, want %d", f.Type, want)
	}
	res, err := wire.DecodeResults(f.Payload, nil)
	if err != nil {
		wc.reset()
		return nil, err
	}
	return res, nil
}

// wireLoop is the closed loop over the swp protocol: same windows,
// same replay-safety classification as the HTTP loop, different
// framing.
func (w *worker) wireLoop(deadline time.Time) {
	wc := &wireConn{addr: w.base}
	defer wc.reset()
	for time.Now().Before(deadline) {
		ids := w.wireSubmitWindow(wc)
		if len(ids) > 0 {
			w.wireCompleteWindow(wc, ids)
		}
	}
}

// wireJobSpec is jobSpec in wire encoding.
func (w *worker) wireJobSpec() wire.Job {
	i := w.seq
	w.seq++
	return wire.Job{
		User:     int32((w.id*31 + i) % w.cfg.Users),
		App:      int32(i % w.cfg.Apps),
		Nodes:    int32(w.cfg.Nodes),
		ReqMemMB: w.cfg.MemMB,
		ReqTimeS: w.cfg.ReqTimeS,
	}
}

// wireExchange runs one timed exchange with the same retry
// classification as post: pre-write failures (dial/handshake) back off
// and retry; post-write failures retry only when the request is
// replay-safe. The frame is built by mk after the connection is up, so
// it always carries the negotiated version. ok is false once retries
// are exhausted or a replay-unsafe request faulted post-write.
func (w *worker) wireExchange(wc *wireConn, mk func() []byte, want wire.FrameType, replaySafe bool) ([]wire.Result, bool) {
	for attempt := 0; ; attempt++ {
		retryable, res, ok := func() (bool, []wire.Result, bool) {
			if err := wc.ensure(); err != nil {
				return true, nil, false // pre-write: nothing sent
			}
			t0 := time.Now()
			res, err := wc.exchange(mk(), want)
			w.stats.latencies = append(w.stats.latencies, time.Since(t0))
			if err != nil {
				return replaySafe, nil, false // post-write: maybe applied
			}
			return false, res, true
		}()
		if ok {
			return res, true
		}
		if !retryable || attempt >= w.cfg.Retries || !w.sleepBackoff(attempt) {
			w.stats.httpErrors++
			return nil, false
		}
		w.stats.retries++
	}
}

// wireSubmitWindow submits one batch frame and returns the IDs that
// started running. Submits are not replay-safe (see submitWindow): a
// post-write fault fails hard rather than risk a double-submitted job
// squatting on capacity.
func (w *worker) wireSubmitWindow(wc *wireConn) []int64 {
	jobs := make([]wire.Job, w.cfg.Batch)
	for i := range jobs {
		jobs[i] = w.wireJobSpec()
	}
	res, ok := w.wireExchange(wc, func() []byte {
		return wc.enc.SubmitBatch(wc.version, jobs)
	}, wire.TypeSubmitResult, false)
	if !ok {
		return nil
	}
	var running []int64
	for i := range res {
		if res[i].Err != "" {
			w.stats.rejected++
			continue
		}
		w.stats.submitted++
		if res[i].State == wire.StateRunning {
			w.stats.started++
			running = append(running, res[i].ID)
		}
	}
	return running
}

// wireCompleteWindow reports completions for the started jobs, one
// frame per -complete-batch chunk (defaulting to -batch). Completions
// are replay-safe (see completeWindow): a replayed completion is
// answered with a per-item error, never trained twice.
func (w *worker) wireCompleteWindow(wc *wireConn, ids []int64) {
	size := w.cfg.completeBatchSize()
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > size {
			chunk = chunk[:size]
		}
		ids = ids[len(chunk):]
		comps := make([]wire.Completion, len(chunk))
		for k, id := range chunk {
			success := w.cfg.FailEvery == 0 || (w.stats.completed+k+1)%w.cfg.FailEvery != 0
			comps[k] = wire.Completion{ID: id, Success: success}
		}
		res, ok := w.wireExchange(wc, func() []byte {
			return wc.enc.CompleteBatch(wc.version, comps)
		}, wire.TypeCompleteResult, true)
		if !ok {
			continue
		}
		for i := range res {
			if res[i].Err == "" {
				w.stats.completed++
			}
		}
	}
}
