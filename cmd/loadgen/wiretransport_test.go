package main

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"overprov/internal/server"
	"overprov/internal/wire"
)

// wireDaemon attaches a real swp listener to the real serving stack.
func wireDaemon(t *testing.T) string {
	t.Helper()
	_, srv := testDaemon(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(srv)
	go func() { _ = ws.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func wireConfig(addr string, batch int) config {
	cfg := testConfig(addr, batch)
	cfg.Proto = "wire"
	return cfg
}

func TestRunWireMode(t *testing.T) {
	addr := wireDaemon(t)
	rep, err := run(wireConfig(addr, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 {
		t.Fatalf("request errors: %d\n%s", rep.HTTPErrors, rep)
	}
	if rep.Submitted == 0 || rep.Started == 0 || rep.Completed == 0 {
		t.Fatalf("no work done:\n%s", rep)
	}
	if rep.Completed > rep.Started || rep.Started > rep.Submitted {
		t.Errorf("counter ordering broken:\n%s", rep)
	}
	if len(rep.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	if rep.Proto != "wire" {
		t.Fatalf("report proto = %q", rep.Proto)
	}
}

func TestRunWireSingleJobWindows(t *testing.T) {
	addr := wireDaemon(t)
	rep, err := run(wireConfig(addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 || rep.Completed == 0 {
		t.Fatalf("single-job windows: %s", rep)
	}
}

func TestWireRejectsURLAddr(t *testing.T) {
	cfg := wireConfig("http://localhost:8080", 4)
	if _, err := run(cfg); err == nil {
		t.Fatal("URL address accepted for -proto wire")
	}
}

// scriptedWire accepts connections one at a time and hands each to the
// next script function. Each script gets a negotiated connection
// (handshake already answered).
func scriptedWire(t *testing.T, scripts ...func(c net.Conn, fr *wire.Reader, bw *bufio.Writer)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for _, script := range scripts {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fr := wire.NewReader(bufio.NewReader(c))
			bw := bufio.NewWriter(c)
			var enc wire.Encoder
			f, err := fr.ReadFrame()
			if err != nil || f.Type != wire.TypeHello {
				_ = c.Close()
				continue
			}
			h, err := wire.DecodeHello(f.Payload)
			if err != nil {
				_ = c.Close()
				continue
			}
			v, err := wire.Negotiate(h)
			if err != nil {
				_ = c.Close()
				continue
			}
			_, _ = bw.Write(enc.Hello(wire.Hello{Min: wire.VersionMin, Max: wire.VersionMax}, v))
			_ = bw.Flush()
			script(c, fr, bw)
			_ = c.Close()
		}
		// Out of scripts: refuse further work by closing the listener so
		// remaining dials fail fast (pre-write).
		_ = ln.Close()
	}()
	return ln.Addr().String()
}

// TestWireSubmitPostWriteFailsHard: the daemon dies after reading a
// submit frame without answering. The submit may have been applied, so
// the generator must count a hard error and NOT retry it — the wire
// analogue of TestSubmitAmbiguousFailureIsHard.
func TestWireSubmitPostWriteFailsHard(t *testing.T) {
	addr := scriptedWire(t, func(c net.Conn, fr *wire.Reader, bw *bufio.Writer) {
		_, _ = fr.ReadFrame() // swallow the submit frame, answer nothing
	})
	cfg := wireConfig(addr, 4)
	cfg.Clients = 1
	cfg.Duration = 50 * time.Millisecond
	cfg.Retries = 5
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 5 * time.Millisecond
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 0 {
		t.Fatalf("ambiguous submit counted as submitted:\n%s", rep)
	}
	if rep.HTTPErrors == 0 {
		t.Fatalf("ambiguous submit not counted as hard error:\n%s", rep)
	}
}

// TestWireDialFailureRetries: nothing listens at the address, so every
// attempt is a pre-write dial error — retried with backoff, never
// ambiguous.
func TestWireDialFailureRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // now nothing listens there

	cfg := wireConfig(addr, 4)
	cfg.Clients = 1
	cfg.Duration = 50 * time.Millisecond
	cfg.Retries = 3
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 2 * time.Millisecond
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatalf("dial failures were not retried:\n%s", rep)
	}
	if rep.Submitted != 0 {
		t.Fatalf("submitted against a dead address:\n%s", rep)
	}
}

// TestWireCompletionRetriesAcrossReconnect: the daemon answers the
// submit, then dies mid-completion; a second connection answers the
// replayed completion. Completions are replay-safe, so the generator
// must reconnect, resend, and count the jobs completed.
func TestWireCompletionRetriesAcrossReconnect(t *testing.T) {
	const batch = 3
	answerSubmit := func(fr *wire.Reader, bw *bufio.Writer) bool {
		f, err := fr.ReadFrame()
		if err != nil || f.Type != wire.TypeSubmitBatch {
			return false
		}
		jobs, err := wire.DecodeSubmitBatch(f.Payload, nil)
		if err != nil {
			return false
		}
		var enc wire.Encoder
		res := make([]wire.Result, len(jobs))
		for i := range res {
			res[i] = wire.Result{ID: int64(i + 1), State: wire.StateRunning}
		}
		_, _ = bw.Write(enc.Results(f.Version, wire.TypeSubmitResult, res))
		return bw.Flush() == nil
	}
	addr := scriptedWire(t,
		func(c net.Conn, fr *wire.Reader, bw *bufio.Writer) {
			if !answerSubmit(fr, bw) {
				return
			}
			_, _ = fr.ReadFrame() // swallow the completion, die
		},
		func(c net.Conn, fr *wire.Reader, bw *bufio.Writer) {
			// The reconnect replays the completion frame.
			f, err := fr.ReadFrame()
			if err != nil || f.Type != wire.TypeCompleteBatch {
				return
			}
			comps, err := wire.DecodeCompleteBatch(f.Payload, nil)
			if err != nil {
				return
			}
			var enc wire.Encoder
			res := make([]wire.Result, len(comps))
			for i := range comps {
				res[i] = wire.Result{ID: comps[i].ID, State: wire.StateDone}
			}
			_, _ = bw.Write(enc.Results(f.Version, wire.TypeCompleteResult, res))
			_ = bw.Flush()
		},
	)
	cfg := wireConfig(addr, batch)
	cfg.Clients = 1
	cfg.Duration = 50 * time.Millisecond
	cfg.Retries = 3
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 2 * time.Millisecond
	cfg.FailEvery = 0
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != batch {
		t.Fatalf("completed %d, want %d (completion must retry across reconnect):\n%s",
			rep.Completed, batch, rep)
	}
	if rep.Retries == 0 {
		t.Fatalf("no retry recorded for the dropped completion:\n%s", rep)
	}
}
