// Tests for the completion-batching knob and the WAL fsync-pressure
// scrape — the loadgen side of the group-commit pipeline.
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
)

// TestCompleteBatchChunking: with -complete-batch smaller than -batch,
// every complete:batch request must carry at most that many items, and
// every started job must still be completed exactly once.
func TestCompleteBatchChunking(t *testing.T) {
	_, srv := testDaemon(t)
	inner := srv.Handler()
	var mu sync.Mutex
	var sizes []int
	// Observe completion request sizes on the way into the real handler.
	obs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/complete:batch" {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var req struct {
				Completions []json.RawMessage `json:"completions"`
			}
			if json.Unmarshal(body, &req) == nil {
				mu.Lock()
				sizes = append(sizes, len(req.Completions))
				mu.Unlock()
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		inner.ServeHTTP(w, r)
	}))
	defer obs.Close()

	cfg := testConfig(obs.URL, 12)
	cfg.CompleteBatch = 4
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErrors != 0 || rep.Completed == 0 {
		t.Fatalf("errors=%d completed=%d\n%s", rep.HTTPErrors, rep.Completed, rep)
	}
	if rep.CompleteBatch != 4 {
		t.Fatalf("report complete-batch = %d, want 4", rep.CompleteBatch)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) == 0 {
		t.Fatal("no complete:batch requests observed")
	}
	for _, n := range sizes {
		if n < 1 || n > 4 {
			t.Fatalf("complete:batch carried %d items, want 1..4 (sizes %v)", n, sizes)
		}
	}
	if m := srv.Metrics(); m.FeedbackEvents != uint64(rep.Completed) {
		t.Errorf("daemon saw %d feedback events, generator delivered %d", m.FeedbackEvents, rep.Completed)
	}
}

// TestCompleteBatchFollowsBatch: the default (0) follows -batch, and
// validate rejects a negative value.
func TestCompleteBatchFollowsBatch(t *testing.T) {
	cfg := testConfig("http://x", 8)
	if got := cfg.completeBatchSize(); got != 8 {
		t.Fatalf("completeBatchSize() = %d, want 8 (follow -batch)", got)
	}
	cfg.CompleteBatch = 3
	if got := cfg.completeBatchSize(); got != 3 {
		t.Fatalf("completeBatchSize() = %d, want 3", got)
	}
	cfg.CompleteBatch = -1
	if err := cfg.validate(); err == nil {
		t.Fatal("negative -complete-batch must be rejected")
	}
}

// TestWALPressureScrape: with -metrics-addr set the report carries the
// run's WAL record and fsync deltas from the daemon's metrics endpoint
// — against a real group-commit WAL the fsync count stays below the
// record count for batched completions.
func TestWALPressureScrape(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Spec{Nodes: 1 << 16, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cluster: cl, Estimator: est, Journal: l})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// The metrics endpoint lives on schedd's debug listener; stand one up
	// the same way.
	debug := httptest.NewServer(srv.MetricsHandler())
	defer debug.Close()

	cfg := testConfig(ts.URL, 16)
	cfg.Duration = 300 * time.Millisecond
	cfg.MetricsAddr = debug.URL
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasWAL {
		t.Fatal("report has no WAL stats despite -metrics-addr")
	}
	if rep.WALRecords != uint64(rep.Completed) {
		t.Fatalf("wal records %d, completed %d — every completion journals exactly once",
			rep.WALRecords, rep.Completed)
	}
	if rep.WALRecords > 0 && rep.WALSyncs >= rep.WALRecords {
		t.Fatalf("fsyncs %d >= records %d: batched completions must share fsyncs",
			rep.WALSyncs, rep.WALRecords)
	}
	out := rep.String()
	if !strings.Contains(out, "wal records") || !strings.Contains(out, "fsyncs/record") {
		t.Fatalf("report does not print fsync pressure:\n%s", out)
	}
}
