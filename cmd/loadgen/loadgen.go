package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// config parameterizes one closed-loop run. The zero value is not
// usable; main and the tests fill every field.
type config struct {
	Addr string
	// Addrs is the multi-target form of Addr: a comma-separated endpoint
	// list. Client goroutines are assigned to targets round-robin
	// (client c drives target c mod N), so a routed or multi-node
	// cluster sees every node loaded evenly by one generator run. Empty
	// means "just Addr".
	Addrs string
	// Proto selects the daemon protocol: "http" (the JSON API; Addr is
	// a base URL) or "wire" (the swp binary batch protocol over a
	// persistent TCP connection per client; Addr is host:port).
	Proto    string
	Clients  int
	Duration time.Duration
	Batch    int
	// CompleteBatch sizes completion windows independently of Batch:
	// how many completion reports ride one complete:batch request (or
	// one wire frame). 0 follows Batch. With the daemon's WAL in group
	// commit, this is the lever that sets the append-group size — the
	// fsync-pressure numbers below measure its effect.
	CompleteBatch int
	// MetricsAddr is the daemon's debug listener base URL (schedd
	// -debug-addr), or a comma-separated list of them for a multi-node
	// cluster. When set, the generator scrapes every listed
	// /api/v1/metrics before and after the run and reports the WAL's
	// fsync pressure — journal fsyncs per completed job, summed across
	// nodes — alongside throughput. A router's -metrics-addr endpoint
	// can ride the same list: it serves the self-healing counters
	// (retries, failovers, degraded admissions) under the same path, so
	// a routed run's report shows how much of the load the healing
	// machinery absorbed.
	MetricsAddr string
	Users       int
	Apps        int
	Nodes       int
	MemMB       float64
	ReqTimeS    float64
	FailEvery   int
	// Retries bounds per-request retry attempts for transient failures:
	// a restarting or draining daemon looks exactly like this, and a
	// closed-loop generator that counts those as hard errors cannot
	// measure a rolling restart. Zero disables retrying.
	//
	// Requests carry no idempotency key, so what counts as transient
	// depends on what a replay could do. Completions retry every
	// transport error and 5xx (a replayed completion is rejected with a
	// 409 — the daemon trains nothing twice). Submits retry only
	// failures that provably never reached the daemon — dial errors and
	// 5xx responses; an ambiguous post-write transport error (timeout or
	// reset after the request was sent) is a hard error, because
	// replaying it could double-submit: the orphaned first job would
	// occupy capacity unseen by this closed loop for the rest of the
	// run, skewing the very occupancy numbers a restart scenario
	// measures.
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt
	// (with jitter) and is capped at RetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// targets resolves the endpoint list clients round-robin over: the
// parsed Addrs when set, otherwise just Addr.
func (c config) targets() []string {
	spec := c.Addrs
	if spec == "" {
		spec = c.Addr
	}
	var out []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// metricsTargets resolves the metrics endpoint list the same way.
func (c config) metricsTargets() []string {
	var out []string
	for _, a := range strings.Split(c.MetricsAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func (c config) validate() error {
	targets := c.targets()
	if len(targets) == 0 {
		return fmt.Errorf("missing -addr (or an empty -addrs list)")
	}
	for _, a := range targets {
		if c.Proto == "wire" && strings.Contains(a, "://") {
			return fmt.Errorf("-proto wire takes host:port addresses, not URLs (%q)", a)
		}
	}
	switch {
	case c.Proto != "http" && c.Proto != "wire":
		return fmt.Errorf("-proto must be http or wire, not %q", c.Proto)
	case c.MetricsAddr != "" && len(c.metricsTargets()) == 0:
		return fmt.Errorf("-metrics-addr is all commas and spaces")
	case c.Clients <= 0:
		return fmt.Errorf("-clients must be positive")
	case c.Duration <= 0:
		return fmt.Errorf("-duration must be positive")
	case c.Batch <= 0:
		return fmt.Errorf("-batch must be positive")
	case c.CompleteBatch < 0:
		return fmt.Errorf("-complete-batch must be >= 0 (0 follows -batch)")
	case c.Users <= 0 || c.Apps <= 0:
		return fmt.Errorf("-users and -apps must be positive")
	case c.FailEvery < 0:
		return fmt.Errorf("-fail must be >= 0")
	case c.Retries < 0:
		return fmt.Errorf("-retries must be >= 0")
	case c.Retries > 0 && c.RetryBase <= 0:
		return fmt.Errorf("-retry-base must be positive when retrying")
	case c.Retries > 0 && c.RetryMax < c.RetryBase:
		return fmt.Errorf("-retry-max must be >= -retry-base")
	}
	return nil
}

// completeBatchSize resolves the effective completion window size.
func (c config) completeBatchSize() int {
	if c.CompleteBatch > 0 {
		return c.CompleteBatch
	}
	return c.Batch
}

// report aggregates all clients' measurements.
type report struct {
	Proto         string
	Clients       int
	Batch         int
	CompleteBatch int
	Elapsed       time.Duration
	Submitted     int           // jobs accepted by the daemon
	Started       int           // of those, dispatched immediately
	Completed     int           // completion reports delivered
	Rejected      int           // per-item submit errors (e.g. unsatisfiable)
	HTTPErrors    int           // requests that failed after exhausting retries
	Retries       int           // transient failures absorbed by backoff + retry
	Latencies     latencySample // one sample per HTTP request attempt

	// WAL fsync pressure over the run, scraped from the daemon's
	// metrics endpoint when MetricsAddr is set (HasWAL). Deltas, so a
	// warm daemon reports only this run's records and fsyncs.
	HasWAL     bool
	WALRecords uint64
	WALSyncs   uint64
	// Self-healing activity over the run, when a router's metrics
	// endpoint is in the scrape list: exchanges retried, standby
	// failovers consumed, and jobs degraded to their requested memory.
	// Deltas, like the WAL counters.
	RouterRetries   uint64
	RouterFailovers uint64
	RouterDegraded  uint64
}

// latencySample holds per-request wall-clock latencies.
type latencySample []time.Duration

func (l latencySample) percentile(p float64) time.Duration {
	if len(l) == 0 {
		return 0
	}
	i := int(p * float64(len(l)-1))
	return l[i]
}

func (r report) String() string {
	var b strings.Builder
	perSec := float64(r.Completed) / r.Elapsed.Seconds()
	fmt.Fprintf(&b, "proto %s  clients %d  batch %d  complete-batch %d  elapsed %v\n",
		r.Proto, r.Clients, r.Batch, r.CompleteBatch, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "submitted %d (started %d, rejected %d)  completed %d  request errors %d  retries %d\n",
		r.Submitted, r.Started, r.Rejected, r.Completed, r.HTTPErrors, r.Retries)
	fmt.Fprintf(&b, "throughput %.0f jobs/s over %d requests\n", perSec, len(r.Latencies))
	fmt.Fprintf(&b, "%s request latency p50 %v  p95 %v  p99 %v  max %v\n", r.Proto,
		r.Latencies.percentile(0.50), r.Latencies.percentile(0.95),
		r.Latencies.percentile(0.99), r.Latencies.percentile(1))
	if r.HasWAL {
		pressure := 0.0
		if r.WALRecords > 0 {
			pressure = float64(r.WALSyncs) / float64(r.WALRecords)
		}
		fmt.Fprintf(&b, "wal records %d  fsyncs %d  fsyncs/record %.3f\n",
			r.WALRecords, r.WALSyncs, pressure)
		if r.RouterRetries > 0 || r.RouterFailovers > 0 || r.RouterDegraded > 0 {
			fmt.Fprintf(&b, "router retries %d  failovers %d  degraded %d\n",
				r.RouterRetries, r.RouterFailovers, r.RouterDegraded)
		}
	}
	return b.String()
}

// walStats is the slice of the daemon's metrics payload the generator
// scrapes for fsync pressure, plus the router's self-healing counters.
// A backend daemon serves only the WAL fields and a router serves only
// the router fields; missing keys decode to zero, so one scrape list
// can mix both endpoint kinds.
type walStats struct {
	Records   uint64 `json:"wal_records"`
	Syncs     uint64 `json:"wal_syncs"`
	Retries   uint64 `json:"router_retries"`
	Failovers uint64 `json:"router_failovers"`
	Degraded  uint64 `json:"router_degraded"`
}

// scrapeWALStats reads one daemon's metrics endpoint (the -debug-addr
// listener). Errors are returned, not fatal: a daemon without a debug
// listener simply yields no pressure numbers.
func scrapeWALStats(base string) (walStats, error) {
	var s walStats
	resp, err := http.Get(strings.TrimRight(base, "/") + "/api/v1/metrics")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("metrics endpoint: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// scrapeClusterWALStats sums WAL counters across every listed metrics
// endpoint. Each routed node journals its own share of the feedback
// stream, so cluster-level fsync pressure is the sum — per-node
// scraping would understate a routed run's records by the fan-out.
func scrapeClusterWALStats(bases []string) (walStats, error) {
	var total walStats
	for _, base := range bases {
		s, err := scrapeWALStats(base)
		if err != nil {
			return walStats{}, fmt.Errorf("%s: %w", base, err)
		}
		total.Records += s.Records
		total.Syncs += s.Syncs
		total.Retries += s.Retries
		total.Failovers += s.Failovers
		total.Degraded += s.Degraded
	}
	return total, nil
}

// run executes the closed loop and merges per-client stats. It is the
// whole generator behind a testable seam: tests point Addr at an
// httptest server.
func run(cfg config) (report, error) {
	if cfg.Proto == "" {
		cfg.Proto = "http"
	}
	if err := cfg.validate(); err != nil {
		return report{}, err
	}
	targets := cfg.targets()
	metrics := cfg.metricsTargets()
	var walBefore walStats
	scrapeWAL := len(metrics) > 0
	if scrapeWAL {
		var err error
		if walBefore, err = scrapeClusterWALStats(metrics); err != nil {
			return report{}, fmt.Errorf("scraping before the run: %w", err)
		}
	}
	deadline := time.Now().Add(cfg.Duration)
	stats := make([]clientStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{
				// Round-robin target assignment: client c drives
				// targets[c mod N] for the whole run, so every node gets
				// the same number of persistent closed-loop clients.
				cfg: cfg, base: strings.TrimRight(targets[c%len(targets)], "/"),
				id: c, stats: &stats[c],
				// Per-worker seeded generator: backoff jitter stays
				// deterministic for a given client id, so runs are
				// reproducible (and workers never share a rand source).
				rng:      rand.New(rand.NewSource(int64(c) + 1)),
				deadline: deadline,
			}
			if cfg.Proto == "wire" {
				w.wireLoop(deadline)
			} else {
				w.loop(deadline)
			}
		}()
	}
	wg.Wait()
	rep := report{
		Proto: cfg.Proto, Clients: cfg.Clients, Batch: cfg.Batch,
		CompleteBatch: cfg.completeBatchSize(), Elapsed: time.Since(start),
	}
	if scrapeWAL {
		after, err := scrapeClusterWALStats(metrics)
		if err != nil {
			return report{}, fmt.Errorf("scraping after the run: %w", err)
		}
		rep.HasWAL = true
		rep.WALRecords = after.Records - walBefore.Records
		rep.WALSyncs = after.Syncs - walBefore.Syncs
		rep.RouterRetries = after.Retries - walBefore.Retries
		rep.RouterFailovers = after.Failovers - walBefore.Failovers
		rep.RouterDegraded = after.Degraded - walBefore.Degraded
	}
	for i := range stats {
		s := &stats[i]
		rep.Submitted += s.submitted
		rep.Started += s.started
		rep.Completed += s.completed
		rep.Rejected += s.rejected
		rep.HTTPErrors += s.httpErrors
		rep.Retries += s.retries
		rep.Latencies = append(rep.Latencies, s.latencies...)
	}
	sort.Slice(rep.Latencies, func(i, j int) bool { return rep.Latencies[i] < rep.Latencies[j] })
	return rep, nil
}

type clientStats struct {
	submitted, started, completed, rejected, httpErrors, retries int
	latencies                                                    []time.Duration
}

type worker struct {
	cfg      config
	base     string
	id       int
	seq      int
	stats    *clientStats
	rng      *rand.Rand
	deadline time.Time
}

// loop submits a window, completes whatever started, and repeats until
// the deadline. One request in flight per client — closed loop.
func (w *worker) loop(deadline time.Time) {
	client := &http.Client{Timeout: 30 * time.Second}
	for time.Now().Before(deadline) {
		ids := w.submitWindow(client)
		if len(ids) > 0 {
			w.completeWindow(client, ids)
		}
	}
}

// jobSpec builds the i-th job of this client, cycling deterministically
// through the similarity groups.
func (w *worker) jobSpec() map[string]any {
	i := w.seq
	w.seq++
	return map[string]any{
		"user":       (w.id*31 + i) % w.cfg.Users,
		"app":        i % w.cfg.Apps,
		"nodes":      w.cfg.Nodes,
		"req_mem_mb": w.cfg.MemMB,
		"req_time_s": w.cfg.ReqTimeS,
	}
}

// post sends one timed request, retrying transient failures with
// capped exponential backoff plus jitter. A restarting or draining
// daemon presents exactly those failures; without retries a closed-loop
// generator reports a rolling restart as a wall of hard errors instead
// of a latency blip.
//
// replaySafe says whether re-sending a request the daemon may have
// already applied is acceptable (see config.Retries): when false, only
// failures that prove the request never reached the daemon — dial
// errors and 5xx responses — are retried. ok is false after retries
// are exhausted or on a non-retryable failure (4xx, malformed
// response, ambiguous transport error on a replay-unsafe request).
func (w *worker) post(client *http.Client, path string, body, out any, wantStatus int, replaySafe bool) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		w.stats.httpErrors++
		return false
	}
	for attempt := 0; ; attempt++ {
		retryable, ok := w.attempt(client, path, buf, out, wantStatus, replaySafe)
		if ok {
			return true
		}
		if !retryable || attempt >= w.cfg.Retries || !w.sleepBackoff(attempt) {
			w.stats.httpErrors++
			return false
		}
		w.stats.retries++
	}
}

// attempt issues a single timed request. retryable reports whether the
// failure is transient (worth backing off and retrying). A 5xx
// response is always retryable — the daemon answered without applying
// the request, so a replay cannot double-apply it. A transport error is
// retryable when the dial itself failed (nothing was sent) or when the
// caller marked the request safe to replay; anything else is an
// ambiguous maybe-applied failure and fails hard.
func (w *worker) attempt(client *http.Client, path string, buf []byte, out any, wantStatus int, replaySafe bool) (retryable, ok bool) {
	t0 := time.Now()
	resp, err := client.Post(w.base+path, "application/json", bytes.NewReader(buf))
	w.stats.latencies = append(w.stats.latencies, time.Since(t0))
	if err != nil {
		return replaySafe || preWrite(err), false
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return resp.StatusCode >= 500, false
	}
	if out == nil {
		return false, true
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, false
	}
	return false, true
}

// preWrite reports whether a transport error happened before any byte
// of the request could have reached the daemon: the dial itself failed
// (connection refused — the common face of a restart). Errors on an
// established connection (client timeout, reset mid-exchange) are
// ambiguous — the daemon may have applied the request and only the
// response was lost — so they do not qualify.
func preWrite(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// sleepBackoff waits min(RetryMax, RetryBase·2^attempt) scaled by a
// jitter factor in [0.5, 1.5) from the worker's seeded generator, so
// clients retrying the same outage don't stampede in lockstep. Returns
// false instead of sleeping past the run deadline.
func (w *worker) sleepBackoff(attempt int) bool {
	d := w.cfg.RetryBase << uint(attempt)
	if d > w.cfg.RetryMax || d <= 0 { // <= 0: shift overflow
		d = w.cfg.RetryMax
	}
	d = time.Duration((0.5 + w.rng.Float64()) * float64(d))
	if !w.deadline.IsZero() && time.Now().Add(d).After(w.deadline) {
		return false
	}
	time.Sleep(d)
	return true
}

type jobView struct {
	ID    int64  `json:"id"`
	State string `json:"state"`
}

type batchResult struct {
	Results []struct {
		Job   *jobView `json:"job"`
		Error string   `json:"error"`
	} `json:"results"`
}

// submitWindow submits cfg.Batch jobs and returns the IDs that started
// running (queued jobs are left to the daemon; a closed loop must not
// block on them). Submits are not replay-safe: a double-submitted job
// would never be completed by this loop and would squat on cluster
// capacity for the rest of the run.
func (w *worker) submitWindow(client *http.Client) []int64 {
	var running []int64
	if w.cfg.Batch == 1 {
		var v jobView
		if !w.post(client, "/api/v1/jobs", w.jobSpec(), &v, http.StatusCreated, false) {
			return nil
		}
		w.stats.submitted++
		if v.State == "running" {
			w.stats.started++
			running = append(running, v.ID)
		}
		return running
	}
	jobs := make([]map[string]any, w.cfg.Batch)
	for i := range jobs {
		jobs[i] = w.jobSpec()
	}
	var resp batchResult
	if !w.post(client, "/api/v1/jobs:batch", map[string]any{"jobs": jobs}, &resp, http.StatusOK, false) {
		return nil
	}
	for _, r := range resp.Results {
		if r.Error != "" || r.Job == nil {
			w.stats.rejected++
			continue
		}
		w.stats.submitted++
		if r.Job.State == "running" {
			w.stats.started++
			running = append(running, r.Job.ID)
		}
	}
	return running
}

// completeWindow reports completions for the started jobs in chunks of
// the effective completion batch size (-complete-batch, defaulting to
// -batch); every FailEvery-th report (per client) is a failure so the
// estimator's raise path stays exercised. Completions are replay-safe:
// if the first attempt was applied and only its response lost, the
// replay is rejected with a 409 (the job is no longer running) and the
// daemon trains nothing twice — the cost is one completion counted as
// a hard error, not corrupted state.
func (w *worker) completeWindow(client *http.Client, ids []int64) {
	success := func(k int) bool {
		return w.cfg.FailEvery == 0 || (w.stats.completed+k+1)%w.cfg.FailEvery != 0
	}
	size := w.cfg.completeBatchSize()
	if size == 1 {
		for _, id := range ids {
			path := fmt.Sprintf("/api/v1/jobs/%d/complete", id)
			if w.post(client, path, map[string]any{"success": success(0)}, nil, http.StatusOK, true) {
				w.stats.completed++
			}
		}
		return
	}
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > size {
			chunk = chunk[:size]
		}
		ids = ids[len(chunk):]
		comps := make([]map[string]any, len(chunk))
		for k, id := range chunk {
			comps[k] = map[string]any{"id": id, "success": success(k)}
		}
		var resp batchResult
		if !w.post(client, "/api/v1/complete:batch", map[string]any{"completions": comps}, &resp, http.StatusOK, true) {
			continue
		}
		for _, r := range resp.Results {
			if r.Error == "" && r.Job != nil {
				w.stats.completed++
			}
		}
	}
}
