// Command estcompare reproduces Table 1 — the paper's quadrant of
// estimation algorithms (feedback type × similarity availability) — and
// the design-choice ablations: learning parameters (α, β), similarity
// keys, scheduling policies, and robustness to spurious failures.
//
// Usage:
//
//	estcompare -small            # Table 1 on the reduced trace
//	estcompare -ablate           # every ablation
//	estcompare -ablate-noise     # only the spurious-failure ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"overprov/internal/experiments"
	"overprov/internal/report"
)

func main() {
	var (
		small       = flag.Bool("small", false, "use the reduced synthetic trace")
		ablate      = flag.Bool("ablate", false, "run every ablation")
		ablateAB    = flag.Bool("ablate-alphabeta", false, "α/β parameter sweep")
		ablateKey   = flag.Bool("ablate-key", false, "similarity-key comparison")
		ablatePol   = flag.Bool("ablate-policy", false, "scheduling-policy comparison")
		ablateNoise = flag.Bool("ablate-noise", false, "spurious-failure robustness")
		ablateAlloc = flag.Bool("ablate-alloc", false, "best-fit vs worst-fit node allocation")
		extWarm     = flag.Bool("ext-warmstart", false, "offline-training (warm start) extension")
		extOnline   = flag.Bool("ext-online", false, "online similarity-identification extension")
		extConv     = flag.Bool("ext-convergence", false, "estimation quality vs similarity-group size")
		extRuntime  = flag.Bool("ext-runtime", false, "learned runtime predictions × memory estimation under EASY")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *ablate {
		*ablateAB, *ablateKey, *ablatePol, *ablateNoise, *ablateAlloc = true, true, true, true, true
		*extWarm, *extOnline, *extConv, *extRuntime = true, true, true, true
	}

	s := experiments.FullScale()
	if *small {
		s = experiments.SmallScale()
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteASCII(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	if !*ablateAB && !*ablateKey && !*ablatePol && !*ablateNoise && !*ablateAlloc && !*extWarm && !*extOnline && !*extConv && !*extRuntime {
		r, err := experiments.Table1(s)
		if err != nil {
			fatal(err)
		}
		emit(r.Table())
		return
	}
	if *ablateAB {
		rows, err := experiments.AlphaBetaSweep(s,
			[]float64{1.2, 1.5, 2, 4, 10}, []float64{0, 0.25, 0.5})
		if err != nil {
			fatal(err)
		}
		emit(experiments.AlphaBetaTable(rows))
	}
	if *ablateKey {
		rows, err := experiments.KeyAblation(s)
		if err != nil {
			fatal(err)
		}
		emit(experiments.KeyAblationTable(rows))
	}
	if *ablatePol {
		rows, err := experiments.PolicyComparison(s)
		if err != nil {
			fatal(err)
		}
		emit(experiments.PolicyTable(rows))
	}
	if *ablateNoise {
		rows, err := experiments.NoiseRobustness(s, []float64{0, 0.01, 0.05})
		if err != nil {
			fatal(err)
		}
		emit(experiments.NoiseTable(rows))
	}
	if *ablateAlloc {
		rows, err := experiments.AllocPolicyComparison(s)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AllocPolicyTable(rows))
	}
	if *extWarm {
		rows, err := experiments.WarmStart(s, 0.4)
		if err != nil {
			fatal(err)
		}
		emit(experiments.WarmStartTable(rows))
	}
	if *extOnline {
		rows, err := experiments.OnlineSimilarity(s)
		if err != nil {
			fatal(err)
		}
		emit(experiments.OnlineSimilarityTable(rows))
	}
	if *extConv {
		r, err := experiments.Convergence(s)
		if err != nil {
			fatal(err)
		}
		emit(r.Table())
	}
	if *extRuntime {
		rows, err := experiments.RuntimePrediction(s)
		if err != nil {
			fatal(err)
		}
		emit(experiments.RuntimePredictionTable(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "estcompare:", err)
	os.Exit(1)
}
