package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/repl"
	"overprov/internal/router"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
	"overprov/internal/wire"
)

// wireNode is one routed backend for the cluster chaos test: a WAL-journaled
// daemon serving swp, exactly the shape `schedd -wal-dir ... -wire-addr ...`
// runs in production.
type wireNode struct {
	name  string
	dir   string
	srv   *server.Server
	est   *estimate.ShardedSynchronized
	log   *wal.Log
	ws    *server.WireServer
	ln    net.Listener
	recov wal.RecoveryStats
}

func (n *wireNode) addr() string { return n.ln.Addr().String() }

// chaosClusterSpec is the node shape shared by startWireNode and the
// promoteMirror call: they must agree or the promoted node would round
// estimates against a different capacity ladder than the one it
// replaces.
const chaosClusterSpec = "4096x64"

// startWireNode builds a backend over the given WAL directory (recovering
// whatever is in it — which is how promotion works too).
func startWireNode(t *testing.T, name, dir string) *wireNode {
	t.Helper()
	cl, err := cluster.New(cluster.Spec{Nodes: 1 << 12, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := l.Recover(est.LoadState, func(r wal.Record) error {
		est.Feedback(r.Outcome())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cluster: cl, Estimator: est, Journal: l})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(srv)
	go func() { _ = ws.Serve(ln) }()
	return &wireNode{name: name, dir: dir, srv: srv, est: est, log: l, ws: ws, ln: ln, recov: stats}
}

func (n *wireNode) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.ws.Shutdown(ctx)
	_ = n.log.Close()
}

// clusterJob is job i of the failover workload: enough groups to land
// on every backend of a 3-node ring.
func clusterJob(i int) wire.Job {
	return wire.Job{
		User: int32(i % 23), App: int32(i % 3),
		Nodes: 1, ReqMemMB: 32, ReqTimeS: 600,
	}
}

// clusterOutcome is global job i's deterministic completion payload,
// shared verbatim between the routed cluster and the reference replay.
func clusterOutcome(id int64, i int) wire.Completion {
	return wire.Completion{ID: id, Success: i%9 != 0, UsedMemMB: float64(2 + i%7)}
}

// chaosRound is the client's record of one submit+complete round
// through the router: which global job indices were actually admitted
// (kept), in what order their completions were acked, and how many were
// degraded. Degraded jobs never reach an estimator, so the reference
// replay skips them; everything else replays in recorded order.
type chaosRound struct {
	kept     []int // global indices admitted normally, submit order
	ackOrder []int // global indices of kept completions, ack order
	degraded int
}

// runChaosRound pushes jobs [start, start+n) through the router and
// drives their completions to a full drain, retrying per-item-errored
// completions (a backend momentarily down still owes the ack — the
// self-healing contract is "retry", never "lost"). Any submit item with
// a hard error fails the test on the spot: under chaos the router may
// degrade a job to its requested memory, but may never refuse it.
func runChaosRound(t *testing.T, fr *wire.Reader, bw *bufio.Writer, version uint8, enc *wire.Encoder, start, n int) chaosRound {
	t.Helper()
	jobs := make([]wire.Job, n)
	for i := range jobs {
		jobs[i] = clusterJob(start + i)
	}
	res := wireExchange(t, fr, bw, enc.SubmitBatch(version, jobs))
	if len(res) != n {
		t.Fatalf("round at %d: %d results for %d jobs", start, len(res), n)
	}
	var rec chaosRound
	comps := make([]wire.Completion, 0, n)
	globals := make([]int, 0, n)
	kept := make([]bool, 0, n)
	for i, r := range res {
		if r.Err != "" {
			t.Fatalf("round at %d: submit item %d hard-failed: %s", start, i, r.Err)
		}
		gi := start + i
		if r.State == wire.StateDegraded {
			rec.degraded++
			kept = append(kept, false)
		} else {
			rec.kept = append(rec.kept, gi)
			kept = append(kept, true)
		}
		// Degraded acks are completed too: the router must no-op them in
		// place rather than bounce them off a backend that never saw the
		// job.
		comps = append(comps, clusterOutcome(r.ID, gi))
		globals = append(globals, gi)
	}

	deadline := time.Now().Add(30 * time.Second)
	for len(comps) > 0 {
		cres := wireExchange(t, fr, bw, enc.CompleteBatch(version, comps))
		if len(cres) != len(comps) {
			t.Fatalf("round at %d: %d completion results for %d items", start, len(cres), len(comps))
		}
		var retryC []wire.Completion
		var retryG []int
		var retryK []bool
		lastErr := ""
		for i, cr := range cres {
			if cr.Err == "" {
				if kept[i] {
					rec.ackOrder = append(rec.ackOrder, globals[i])
				}
				continue
			}
			lastErr = cr.Err
			retryC = append(retryC, comps[i])
			retryG = append(retryG, globals[i])
			retryK = append(retryK, kept[i])
		}
		comps, globals, kept = retryC, retryG, retryK
		if len(comps) > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round at %d: %d completions never drained (last error %q)", start, len(comps), lastErr)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if len(rec.ackOrder) != len(rec.kept) {
		t.Fatalf("round at %d: %d kept jobs but %d kept completion acks", start, len(rec.kept), len(rec.ackOrder))
	}
	return rec
}

// promoOutcome is what the background promotion path hands back to the
// test body once the follower has promoted itself.
type promoOutcome struct {
	node  *promotedNode
	state []byte // estimator state at the instant of promotion
	err   error
}

// TestClusterChaosFailover is the distributed tier's end-to-end crash
// story with the human deleted from the loop: 3 schedd nodes behind a
// probing router, a follower mirroring node 1's WAL over swp with
// auto-promotion armed, and node 1 dying hard mid-load. The follower
// must declare the leader dead and promote its (hand-torn) mirror on
// the standby address by itself; the router must declare node 1 down,
// swap in the pre-declared standby, and probe it back to healthy by
// itself. The test body never calls SetBackendAddr or restarts
// anything. Under all of that:
//
//  1. No client request hard-fails — jobs are at worst degraded to
//     their requested memory, and every completion is eventually acked.
//  2. The promoted node's state is byte-identical to the dead node's
//     acked state, via ordinary crash recovery over the torn mirror.
//  3. The merged cluster snapshot is byte-identical to a crash-free
//     single node replaying the surviving client stream.
func TestClusterChaosFailover(t *testing.T) {
	const batch = 46

	// The routed cluster: 3 nodes, a follower shadowing node 1's WAL
	// with auto-promotion armed on a pre-bound standby listener.
	nodes := make([]*wireNode, 3)
	for i := range nodes {
		nodes[i] = startWireNode(t, fmt.Sprintf("node%d", i), t.TempDir())
	}
	defer nodes[0].stop(t)
	defer nodes[2].stop(t)

	standbyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	mirrorDir := t.TempDir()
	mirror, err := wal.OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	follower := &repl.Follower{
		Addr:          nodes[1].addr(),
		Mirror:        mirror,
		Interval:      2 * time.Millisecond,
		PollTimeout:   250 * time.Millisecond,
		DeadThreshold: 4,
		DeadWindow:    20 * time.Millisecond,
	}
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	followerDone := make(chan error, 1)
	go func() { followerDone <- follower.Run(fctx) }()

	// The promotion pipeline: when the follower declares the leader
	// dead, wait for the test to finish tearing the sealed mirror, then
	// recover a daemon from it and serve on the standby listener —
	// exactly what `schedd -follow -promote-misses` does, minus the
	// process boundary.
	leaderDead := make(chan struct{})
	tearDone := make(chan struct{})
	promoCh := make(chan promoOutcome, 1)
	go func() {
		if err := <-followerDone; !errors.Is(err, repl.ErrLeaderDead) {
			promoCh <- promoOutcome{err: fmt.Errorf("follower exited with %v, want ErrLeaderDead", err)}
			close(leaderDead)
			return
		}
		close(leaderDead)
		<-tearDone
		p, err := promoteMirror(mirrorDir, chaosClusterSpec, 2, 0, false, 4, wal.Options{})
		if err != nil {
			promoCh <- promoOutcome{err: fmt.Errorf("promoting mirror: %w", err)}
			return
		}
		var state bytes.Buffer
		if err := p.Est.SaveState(&state); err != nil {
			promoCh <- promoOutcome{err: err}
			return
		}
		go func() { _ = p.Wire.Serve(standbyLn) }()
		promoCh <- promoOutcome{node: p, state: state.Bytes()}
	}()

	// The router: node 1 pre-declares the follower's listener as its
	// standby. Probe/retry knobs are shrunk so the whole heal runs in
	// test time; IOTimeout stays generous so exchanges parked in the
	// standby's pre-bound backlog are answered after promotion rather
	// than abandoned mid-write.
	rt, err := router.New(router.Config{
		Backends: []router.Backend{
			{Name: "node0", Addr: nodes[0].addr()},
			{Name: "node1", Addr: nodes[1].addr(), Standby: standbyLn.Addr().String()},
			{Name: "node2", Addr: nodes[2].addr()},
		},
		DialTimeout: time.Second,
		IOTimeout:   5 * time.Second,
		Probe:       router.ProbeConfig{Interval: 5 * time.Millisecond, Timeout: 250 * time.Millisecond, FailThreshold: 2, RecoverThreshold: 1},
		Retry:       router.RetryConfig{Max: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rt.Serve(rln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	}()
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	rt.StartProbes(probeCtx)

	_, fr, bw, version := wireDial(t, rln.Addr().String())
	var enc wire.Encoder

	// Pre-crash load; mid-way node 1 rotates its WAL (so promotion
	// exercises the snapshot + journal-suffix path, not just a journal
	// replay).
	var rounds []chaosRound
	idx := 0
	rounds = append(rounds, runChaosRound(t, fr, bw, version, &enc, idx, batch))
	idx += batch
	if err := nodes[1].srv.Quiesce(func() error {
		return nodes[1].log.Rotate(nodes[1].est.SaveState)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		rounds = append(rounds, runChaosRound(t, fr, bw, version, &enc, idx, batch))
		idx += batch
	}
	for _, rec := range rounds {
		if rec.degraded != 0 {
			t.Fatalf("degraded admissions before the crash (every backend was alive)")
		}
	}

	// Wait for the follower to fully catch up on the acked stream, then
	// kill node 1 hard: the wire listener dies, the WAL is abandoned
	// (never rotated or closed — a SIGKILL leaves exactly this).
	deadline := time.Now().Add(10 * time.Second)
	for {
		gens, lagBytes := mirror.Lag()
		if gens == 0 && lagBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: lag %d gens, %d bytes", gens, lagBytes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim := nodes[1]
	killCtx, killCancel := context.WithTimeout(context.Background(), time.Second)
	_ = victim.ws.Shutdown(killCtx)
	killCancel()
	var preCrash bytes.Buffer
	if err := victim.est.SaveState(&preCrash); err != nil {
		t.Fatal(err)
	}

	// Once the follower has declared the leader dead (and stopped
	// touching the mirror), seal the mirror and tear its journal tail as
	// if the follower died mid-append too — promotion must repair it.
	select {
	case <-leaderDead:
	case <-time.After(10 * time.Second):
		t.Fatal("follower never declared the leader dead")
	}
	if err := mirror.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Close(); err != nil {
		t.Fatal(err)
	}
	tail := filepath.Join(mirrorDir, fmt.Sprintf("journal-%08d.wal", victim.log.Seq()))
	jf, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}
	close(tearDone)

	// Client load continues through the outage. Nothing below touches
	// the router's membership — the prober and the promotion goroutine
	// must converge the cluster on their own. Convergence = node1 probed
	// back to healthy on the standby address, exactly one failover
	// consumed, and three consecutive all-admitted rounds.
	clean := 0
	deadline = time.Now().Add(30 * time.Second)
	for clean < 3 {
		rec := runChaosRound(t, fr, bw, version, &enc, idx, batch)
		idx += batch
		rounds = append(rounds, rec)
		m := rt.Metrics()
		node1Healthy := false
		for _, b := range m.Backends {
			if b.Name == "node1" && b.Health == router.HealthHealthy.String() {
				node1Healthy = true
			}
		}
		if node1Healthy && m.Failovers == 1 && rec.degraded == 0 {
			clean++
		} else {
			clean = 0
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: %+v", rt.Metrics())
		}
	}

	// The promotion must have completed for node1 to be healthy again.
	var promo promoOutcome
	select {
	case promo = <-promoCh:
	case <-time.After(10 * time.Second):
		t.Fatal("promotion never completed")
	}
	if promo.err != nil {
		t.Fatal(promo.err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = promo.node.Wire.Shutdown(ctx)
		_ = promo.node.Log.Close()
	}()

	// Failover swapped node1's address to the standby listener.
	for _, b := range rt.Metrics().Backends {
		if b.Name == "node1" && b.Addr != standbyLn.Addr().String() {
			t.Fatalf("node1 serves on %s after failover, want standby %s", b.Addr, standbyLn.Addr())
		}
	}

	// Promotion ran ordinary crash recovery: the hand-torn tail was
	// repaired, and the state it woke up with is byte-identical to the
	// dead node's acked state.
	if promo.node.Recovery.TornBytes == 0 {
		t.Fatal("promotion saw no torn bytes — the hand-torn tail was not repaired")
	}
	if !bytes.Equal(preCrash.Bytes(), promo.state) {
		t.Fatalf("promoted state differs from the dead node's acked state (%d vs %d bytes)",
			len(promo.state), preCrash.Len())
	}

	// Reference: a crash-free single node replays the stream the cluster
	// actually admitted — kept jobs in submit order, completions in the
	// order their acks came back. Degraded jobs trained no estimator, so
	// the reference skips them too.
	ref := startWireNode(t, "ref", t.TempDir())
	defer ref.stop(t)
	_, rfr, rbw, rver := wireDial(t, ref.addr())
	var renc wire.Encoder
	for _, rec := range rounds {
		if len(rec.kept) == 0 {
			continue
		}
		jobs := make([]wire.Job, len(rec.kept))
		for i, gi := range rec.kept {
			jobs[i] = clusterJob(gi)
		}
		res := wireExchange(t, rfr, rbw, renc.SubmitBatch(rver, jobs))
		if len(res) != len(jobs) {
			t.Fatalf("reference: %d results for %d jobs", len(res), len(jobs))
		}
		refID := make(map[int]int64, len(res))
		for i, r := range res {
			if r.Err != "" {
				t.Fatalf("reference submit item %d: %s", i, r.Err)
			}
			refID[rec.kept[i]] = r.ID
		}
		comps := make([]wire.Completion, len(rec.ackOrder))
		for i, gi := range rec.ackOrder {
			comps[i] = clusterOutcome(refID[gi], gi)
		}
		for i, r := range wireExchange(t, rfr, rbw, renc.CompleteBatch(rver, comps)) {
			if r.Err != "" {
				t.Fatalf("reference complete item %d: %s", i, r.Err)
			}
		}
	}
	var want bytes.Buffer
	if err := ref.est.SaveState(&want); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("reference state is empty — workload did not learn")
	}

	// Merged cluster snapshot == crash-free reference.
	states := make([]io.Reader, 0, 3)
	for _, est := range []*estimate.ShardedSynchronized{nodes[0].est, promo.node.Est, nodes[2].est} {
		var buf bytes.Buffer
		if err := est.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		states = append(states, &buf)
	}
	var merged bytes.Buffer
	if err := estimate.MergeStates(&merged, states...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want.Bytes()) {
		t.Fatalf("merged post-failover state differs from crash-free reference (%d vs %d bytes)",
			merged.Len(), want.Len())
	}
}
