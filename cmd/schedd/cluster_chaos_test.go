package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/repl"
	"overprov/internal/router"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
	"overprov/internal/wire"
)

// wireNode is one routed backend for the cluster chaos test: a WAL-journaled
// daemon serving swp, exactly the shape `schedd -wal-dir ... -wire-addr ...`
// runs in production.
type wireNode struct {
	name  string
	dir   string
	srv   *server.Server
	est   *estimate.ShardedSynchronized
	log   *wal.Log
	ws    *server.WireServer
	ln    net.Listener
	recov wal.RecoveryStats
}

func (n *wireNode) addr() string { return n.ln.Addr().String() }

// startWireNode builds a backend over the given WAL directory (recovering
// whatever is in it — which is how promotion works too).
func startWireNode(t *testing.T, name, dir string) *wireNode {
	t.Helper()
	cl, err := cluster.New(cluster.Spec{Nodes: 1 << 12, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := l.Recover(est.LoadState, func(r wal.Record) error {
		est.Feedback(r.Outcome())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cluster: cl, Estimator: est, Journal: l})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(srv)
	go func() { _ = ws.Serve(ln) }()
	return &wireNode{name: name, dir: dir, srv: srv, est: est, log: l, ws: ws, ln: ln, recov: stats}
}

func (n *wireNode) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.ws.Shutdown(ctx)
	_ = n.log.Close()
}

// clusterJob is job i of the failover workload: enough groups to land
// on every backend of a 3-node ring.
func clusterJob(i int) wire.Job {
	return wire.Job{
		User: int32(i % 23), App: int32(i % 3),
		Nodes: 1, ReqMemMB: 32, ReqTimeS: 600,
	}
}

// runClusterPhase pushes jobs [start, start+n) through one swp
// endpoint in a single batch pair, with deterministic mixed outcomes.
func runClusterPhase(t *testing.T, fr *wire.Reader, bw *bufio.Writer, version uint8, enc *wire.Encoder, start, n int) {
	t.Helper()
	jobs := make([]wire.Job, n)
	for i := range jobs {
		jobs[i] = clusterJob(start + i)
	}
	res := wireExchange(t, fr, bw, enc.SubmitBatch(version, jobs))
	if len(res) != n {
		t.Fatalf("phase at %d: %d results", start, len(res))
	}
	comps := make([]wire.Completion, n)
	for i, r := range res {
		if r.Err != "" {
			t.Fatalf("phase at %d item %d: %s", start, i, r.Err)
		}
		comps[i] = wire.Completion{ID: r.ID, Success: (start+i)%9 != 0, UsedMemMB: float64(2 + (start+i)%7)}
	}
	cres := wireExchange(t, fr, bw, enc.CompleteBatch(version, comps))
	for i, r := range cres {
		if r.Err != "" {
			t.Fatalf("phase at %d complete item %d: %s", start, i, r.Err)
		}
	}
}

// TestClusterChaosFailover is the distributed tier's end-to-end crash
// story, the in-process analogue of: 3 schedd nodes behind a router, a
// follower mirroring one node's WAL over swp, the node dying hard, the
// follower's (hand-torn) mirror being promoted and swapped in by
// address — after which the merged cluster snapshot must still be
// byte-identical to a crash-free single node serving the same load.
func TestClusterChaosFailover(t *testing.T) {
	const phase = 96

	// Reference: one crash-free node sees the whole workload directly.
	ref := startWireNode(t, "ref", t.TempDir())
	defer ref.stop(t)
	_, rfr, rbw, rver := wireDial(t, ref.addr())
	var renc wire.Encoder
	for p := 0; p < 3; p++ {
		runClusterPhase(t, rfr, rbw, rver, &renc, p*phase, phase)
	}
	var want bytes.Buffer
	if err := ref.est.SaveState(&want); err != nil {
		t.Fatal(err)
	}

	// The routed cluster: 3 nodes, a follower shadowing node 1's WAL.
	nodes := make([]*wireNode, 3)
	for i := range nodes {
		nodes[i] = startWireNode(t, fmt.Sprintf("node%d", i), t.TempDir())
	}
	defer nodes[0].stop(t)
	defer nodes[2].stop(t)

	mirrorDir := t.TempDir()
	mirror, err := wal.OpenMirror(mirrorDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	follower := &repl.Follower{Addr: nodes[1].addr(), Mirror: mirror, Interval: 2 * time.Millisecond}
	followerDone := make(chan error, 1)
	go func() { followerDone <- follower.Run(fctx) }()

	rt, err := router.New(router.Config{Backends: []router.Backend{
		{Name: "node0", Addr: nodes[0].addr()},
		{Name: "node1", Addr: nodes[1].addr()},
		{Name: "node2", Addr: nodes[2].addr()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rt.Serve(rln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	}()

	_, fr, bw, version := wireDial(t, rln.Addr().String())
	var enc wire.Encoder

	// Phase 1 through the router; mid-way node 1 rotates its WAL (so
	// promotion exercises the snapshot + journal-suffix path, not just
	// a journal replay).
	runClusterPhase(t, fr, bw, version, &enc, 0, phase)
	if err := nodes[1].srv.Quiesce(func() error {
		return nodes[1].log.Rotate(nodes[1].est.SaveState)
	}); err != nil {
		t.Fatal(err)
	}
	runClusterPhase(t, fr, bw, version, &enc, phase, phase)

	// Wait for the follower to fully catch up on the acked stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		gens, lagBytes := mirror.Lag()
		if gens == 0 && lagBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: lag %d gens, %d bytes", gens, lagBytes)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill node 1 hard: stop the follower, abandon the node (its WAL is
	// never rotated or closed — a SIGKILL leaves exactly this), and tear
	// the mirror's journal tail as if the follower died mid-append too.
	fcancel()
	if err := <-followerDone; err != nil && fctx.Err() == nil {
		t.Fatal(err)
	}
	if err := mirror.Close(); err != nil {
		t.Fatal(err)
	}
	victim := nodes[1]
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	_ = victim.ws.Shutdown(ctx)
	cancel()

	tail := filepath.Join(mirrorDir, fmt.Sprintf("journal-%08d.wal", victim.log.Seq()))
	jf, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote: a fresh daemon over the mirror directory. Recovery must
	// repair the torn tail and replay the full acked stream.
	promoted := startWireNode(t, "node1", mirrorDir)
	defer promoted.stop(t)
	if promoted.recov.TornBytes == 0 {
		t.Fatal("promotion saw no torn bytes — the hand-torn tail was not repaired")
	}
	var preCrash, postPromote bytes.Buffer
	if err := victim.est.SaveState(&preCrash); err != nil {
		t.Fatal(err)
	}
	if err := promoted.est.SaveState(&postPromote); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preCrash.Bytes(), postPromote.Bytes()) {
		t.Fatalf("promoted follower state differs from the dead node's acked state (%d vs %d bytes)",
			postPromote.Len(), preCrash.Len())
	}
	if err := rt.SetBackendAddr("node1", promoted.addr()); err != nil {
		t.Fatal(err)
	}

	// Phase 2 rides through the same router and client connection.
	runClusterPhase(t, fr, bw, version, &enc, 2*phase, phase)

	// Merged cluster snapshot == crash-free single node.
	states := make([]io.Reader, 0, 3)
	for _, n := range []*wireNode{nodes[0], promoted, nodes[2]} {
		var buf bytes.Buffer
		if err := n.est.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		states = append(states, &buf)
	}
	var merged bytes.Buffer
	if err := estimate.MergeStates(&merged, states...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want.Bytes()) {
		t.Fatalf("merged post-failover state differs from crash-free reference (%d vs %d bytes)",
			merged.Len(), want.Len())
	}
}
