package main

import "testing"

func TestParseCluster(t *testing.T) {
	cl, err := parseCluster("512x32,512x24")
	if err != nil {
		t.Fatal(err)
	}
	if cl.TotalNodes() != 1024 {
		t.Errorf("nodes = %d, want 1024", cl.TotalNodes())
	}
	caps := cl.Capacities()
	if len(caps) != 2 || !caps[0].Eq(24) || !caps[1].Eq(32) {
		t.Errorf("capacities = %v", caps)
	}
	// Whitespace and fractional memory are accepted.
	if _, err := parseCluster(" 4 x 1.5 , 2x8 "); err != nil {
		t.Errorf("whitespace spec rejected: %v", err)
	}
}

func TestParseClusterErrors(t *testing.T) {
	for _, spec := range []string{
		"", "512", "512x", "x32", "ax32", "512xb", "0x32", "4x0", "4x-1",
	} {
		if _, err := parseCluster(spec); err == nil {
			t.Errorf("parseCluster(%q) should fail", spec)
		}
	}
}
