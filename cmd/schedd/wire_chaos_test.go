package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
	"overprov/internal/wire"
)

// wireDial opens a negotiated swp connection to addr.
func wireDial(t *testing.T, addr string) (net.Conn, *wire.Reader, *bufio.Writer, uint8) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	fr := wire.NewReader(bufio.NewReader(c))
	bw := bufio.NewWriter(c)
	var enc wire.Encoder
	if _, err := bw.Write(enc.Hello(wire.Hello{Min: wire.VersionMin, Max: wire.VersionMax}, wire.VersionMin)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("hello flush: %v", err)
	}
	f, err := fr.ReadFrame()
	if err != nil || f.Type != wire.TypeHello {
		t.Fatalf("hello reply: %v (type %d)", err, f.Type)
	}
	return c, fr, bw, f.Version
}

// wireExchange sends one frame and decodes the reply's results.
func wireExchange(t *testing.T, fr *wire.Reader, bw *bufio.Writer, frame []byte) []wire.Result {
	t.Helper()
	if _, err := bw.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if f.Type == wire.TypeError {
		t.Fatalf("server error: %s", wire.DecodeError(f.Payload))
	}
	res, err := wire.DecodeResults(f.Payload, nil)
	if err != nil {
		t.Fatalf("decode results: %v", err)
	}
	return res
}

// TestWireCrashRecovery runs the daemon's WAL crash story over the
// binary protocol: completions acked over swp connections must survive
// an unclean death (abandoned WAL directory, torn tail garbage) and be
// present in a recovered daemon's estimator — the journal-before-train
// ordering holds on the wire path exactly as on HTTP.
func TestWireCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ts, srv, est, l := walDaemon(t, dir)
	defer ts.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(srv)
	go func() { _ = ws.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	}()

	_, fr, bw, version := wireDial(t, ln.Addr().String())
	var enc wire.Encoder
	const n = 40
	jobs := make([]wire.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, wire.Job{
			User: int32(i % 5), App: int32(i % 3), Nodes: 1, ReqMemMB: 32, ReqTimeS: 600,
		})
	}
	res := wireExchange(t, fr, bw, enc.SubmitBatch(version, jobs))
	comps := make([]wire.Completion, 0, n)
	for i := range res {
		if res[i].Err != "" {
			t.Fatalf("submit item %d: %s", i, res[i].Err)
		}
		comps = append(comps, wire.Completion{ID: res[i].ID, Success: true})
	}
	cres := wireExchange(t, fr, bw, enc.CompleteBatch(version, comps))
	for i := range cres {
		if cres[i].Err != "" {
			t.Fatalf("complete item %d: %s", i, cres[i].Err)
		}
	}
	var want bytes.Buffer
	if err := est.SaveState(&want); err != nil {
		t.Fatal(err)
	}

	// The "crash": no shutdown, no rotation — the WAL directory is
	// simply abandoned mid-life (l deliberately never closed) with torn
	// garbage on the journal tail.
	journalPath := filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", l.Seq()))
	jf, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	cl2, err := cluster.New(cluster.Spec{Nodes: 1 << 12, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est2, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{
		Alpha: 2, Round: cl2,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	stats, err := l2.Recover(est2.LoadState, func(r wal.Record) error {
		est2.Feedback(r.Outcome())
		return nil
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Records != n {
		t.Fatalf("recovered %d journal records, want %d", stats.Records, n)
	}
	var got bytes.Buffer
	if err := est2.SaveState(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("recovered estimator state differs from pre-crash state:\npre:  %d bytes\npost: %d bytes",
			want.Len(), got.Len())
	}
}

// TestWireDrainFinishesInFlightFrame checks graceful shutdown on the
// wire path: a frame already received when drain starts still gets its
// response, and its completions reach the estimator before the daemon
// exits — the wire analogue of TestDrainWaitsForInFlight.
func TestWireDrainFinishesInFlightFrame(t *testing.T) {
	dir := t.TempDir()
	ts, srv, est, l := walDaemon(t, dir)
	defer ts.Close()
	defer l.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := server.NewWireServer(srv)
	go func() { _ = ws.Serve(ln) }()

	_, fr, bw, version := wireDial(t, ln.Addr().String())
	var enc wire.Encoder
	res := wireExchange(t, fr, bw, enc.SubmitBatch(version, []wire.Job{
		{User: 1, App: 1, Nodes: 1, ReqMemMB: 32, ReqTimeS: 600},
	}))
	if res[0].Err != "" {
		t.Fatalf("submit: %s", res[0].Err)
	}
	groupsBefore := est.NumGroups()

	// Write the completion frame, then immediately drain: Shutdown must
	// let the in-flight frame finish and answer before closing.
	if _, err := bw.Write(enc.CompleteBatch(version, []wire.Completion{{ID: res[0].ID, Success: true}})); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("in-flight frame got no response across drain: %v", err)
	}
	if f.Type != wire.TypeCompleteResult {
		t.Fatalf("reply type = %d (%s)", f.Type, wire.DecodeError(f.Payload))
	}
	cres, err := wire.DecodeResults(f.Payload, nil)
	if err != nil || cres[0].Err != "" || cres[0].State != wire.StateDone {
		t.Fatalf("drained completion: %v %+v", err, cres)
	}
	if est.NumGroups() < groupsBefore || est.NumGroups() == 0 {
		t.Fatalf("completion feedback lost during drain: %d groups", est.NumGroups())
	}
}
