package main

import (
	"fmt"

	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/wal"
)

// promotedNode is a scheduling daemon raised from a follower's mirror:
// the follower half of automatic failover. The router half swaps the
// dead backend's address for the standby this node serves on.
type promotedNode struct {
	Srv      *server.Server
	Est      *estimate.ShardedSynchronized
	Log      *wal.Log
	Wire     *server.WireServer
	Recovery wal.RecoveryStats
}

// promoteMirror turns a mirrored WAL directory into a live scheduling
// daemon. There is deliberately no special promotion machinery: the
// mirror is always a valid WAL directory, so promotion is an ordinary
// wal.Open + Recover — the identical code path any crash restart runs,
// torn-tail repair included — feeding a fresh estimator, with a wire
// server ready to Serve on the pre-bound standby listener.
func promoteMirror(walDir, clSpec string, alpha, beta float64, explicit bool, shards int, walOpts wal.Options) (*promotedNode, error) {
	cl, err := parseCluster(clSpec)
	if err != nil {
		return nil, err
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{
		Alpha: alpha, Beta: beta, Round: cl,
	}, shards)
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(walDir, walOpts)
	if err != nil {
		return nil, err
	}
	stats, err := l.Recover(est.LoadState, func(r wal.Record) error {
		est.Feedback(r.Outcome())
		return nil
	})
	if err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("recovering %s: %w", walDir, err)
	}
	srv, err := server.New(server.Config{
		Cluster:          cl,
		Estimator:        est,
		ExplicitFeedback: explicit,
		Journal:          l,
	})
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	return &promotedNode{
		Srv:      srv,
		Est:      est,
		Log:      l,
		Wire:     server.NewWireServer(srv),
		Recovery: stats,
	}, nil
}
