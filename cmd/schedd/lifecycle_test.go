package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/faultinject"
	"overprov/internal/server"
	"overprov/internal/units"
)

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	write := func(content string) func(io.Writer) error {
		return func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}
	}
	if err := atomicWriteFile(path, write("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content %q, want v1", got)
	}
	// Overwrite is atomic: on writer failure the old content survives
	// and no temp file is left behind.
	boom := errors.New("snapshot failed halfway")
	err := atomicWriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writer error not propagated: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("failed write clobbered the file: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file leaked: %v", entries)
	}
	if err := atomicWriteFile(path, write("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content %q, want v2", got)
	}
}

// slowDaemon starts a real listener whose estimator sleeps estLatency
// per call, so requests can be caught in flight by drain.
func slowDaemon(t *testing.T, estLatency time.Duration) (*server.Server, *http.Server, string) {
	t.Helper()
	cl, err := cluster.New(cluster.Spec{Nodes: 64, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := faultinject.NewSchedule(faultinject.SlowAll(faultinject.OpEstimate, estLatency))
	srv, err := server.New(server.Config{Cluster: cl, Estimator: faultinject.NewEstimator(inner, sched)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	t.Cleanup(func() { httpSrv.Close() })
	return srv, httpSrv, "http://" + ln.Addr().String()
}

// submitInBackground fires a submission and reports its outcome.
func submitInBackground(t *testing.T, base string) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/api/v1/jobs", "application/json",
			strings.NewReader(`{"user":1,"app":1,"nodes":1,"req_mem_mb":32,"req_time_s":600}`))
		if err != nil {
			done <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			done <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	return done
}

func waitInFlight(t *testing.T, srv *server.Server) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if srv.InFlight() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("request never became in-flight")
}

// TestDrainWaitsForInFlight: a request stuck behind a slow estimator
// finishes when the drain deadline is generous.
func TestDrainWaitsForInFlight(t *testing.T) {
	srv, httpSrv, base := slowDaemon(t, 300*time.Millisecond)
	done := submitInBackground(t, base)
	waitInFlight(t, srv)

	res := drain(srv, httpSrv, nil, nil, 10*time.Second)
	if !res.Clean {
		t.Fatalf("drain not clean: %v", res)
	}
	if res.Drained < 1 || res.Aborted != 0 {
		t.Fatalf("drained=%d aborted=%d, want the slow request drained", res.Drained, res.Aborted)
	}
	if err := <-done; err != nil {
		t.Fatalf("drained request failed anyway: %v", err)
	}
	if !srv.Draining() {
		t.Error("server not marked draining")
	}
}

// TestDrainDeadlineAborts: with a deadline far shorter than the stuck
// request, drain gives up, reports it, and does not hang.
func TestDrainDeadlineAborts(t *testing.T) {
	srv, httpSrv, base := slowDaemon(t, 3*time.Second)
	done := submitInBackground(t, base)
	waitInFlight(t, srv)

	t0 := time.Now()
	res := drain(srv, httpSrv, nil, nil, 50*time.Millisecond)
	if took := time.Since(t0); took > 2*time.Second {
		t.Fatalf("drain blocked %v past its 50ms deadline", took)
	}
	if res.Clean {
		t.Fatalf("drain reported clean with a 3s request in flight: %v", res)
	}
	<-done // the aborted request errors out; just reap the goroutine
}
