package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
)

// walDaemon assembles the daemon exactly as main does with -wal-dir:
// WAL open + recover, journal wired ahead of the estimator.
func walDaemon(t *testing.T, dir string) (*httptest.Server, *server.Server, *estimate.ShardedSynchronized, *wal.Log) {
	t.Helper()
	return walDaemonOpts(t, dir, wal.Options{})
}

// walDaemonOpts is walDaemon with explicit WAL options — the
// group-commit chaos tests build the daemon as main does with
// -wal-group-commit.
func walDaemonOpts(t *testing.T, dir string, opts wal.Options) (*httptest.Server, *server.Server, *estimate.ShardedSynchronized, *wal.Log) {
	t.Helper()
	cl, err := cluster.New(cluster.Spec{Nodes: 1 << 12, Mem: units.MemSize(64)})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2, Round: cl}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(est.LoadState, func(r wal.Record) error {
		est.Feedback(r.Outcome())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cluster: cl, Estimator: est, Journal: l})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return ts, srv, est, l
}

// TestDaemonCrashRecovery is the tentpole's end-to-end check: a real
// daemon journals completions from concurrent clients, the process
// "dies" without any shutdown (the WAL file is simply abandoned, plus
// torn garbage appended to the journal tail), and a fresh daemon
// recovering from the directory must (a) have trained on every acked
// completion and (b) hold state byte-identical to loading the newest
// snapshot and replaying the journal suffix.
func TestDaemonCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ts, srv, est, l := walDaemon(t, dir)

	// Phase 1: concurrent closed-loop clients, completions acked → WAL.
	const clients, perClient = 4, 25
	var mu sync.Mutex
	var ackedJobs []int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"user":%d,"app":%d,"nodes":1,"req_mem_mb":32,"req_time_s":600}`,
					c, i%3)
				resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				var v server.JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil || v.State != server.StateRunning {
					t.Errorf("submit: %v state %q", err, v.State)
					return
				}
				resp, err = http.Post(
					fmt.Sprintf("%s/api/v1/jobs/%d/complete", ts.URL, v.ID),
					"application/json", strings.NewReader(`{"success":true}`))
				if err != nil {
					t.Errorf("complete: %v", err)
					return
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					mu.Lock()
					ackedJobs = append(ackedJobs, v.ID)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(ackedJobs) != clients*perClient {
		t.Fatalf("only %d/%d completions acked", len(ackedJobs), clients*perClient)
	}
	m := srv.Metrics()
	if m.WALErrors != 0 || m.WALRecords != uint64(len(ackedJobs)) {
		t.Fatalf("wal_records=%d wal_errors=%d, want %d and 0", m.WALRecords, m.WALErrors, len(ackedJobs))
	}

	// Mid-life rotation, then more acked load on the new generation.
	if err := l.Rotate(est.SaveState); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"user":9,"app":%d,"nodes":1,"req_mem_mb":16,"req_time_s":60}`, i%2)
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%d/complete", ts.URL, v.ID),
			"application/json", strings.NewReader(`{"success":true}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// The live state the crash must not lose.
	var live bytes.Buffer
	if err := est.SaveState(&live); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: no drain, no Close, no final rotation — and the torn tail
	// of a half-written append on top.
	ts.Close()
	journalPath := filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", l.Seq()))
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: a fresh daemon recovers from the directory alone.
	ts2, _, est2, l2 := walDaemon(t, dir)
	defer ts2.Close()
	defer l2.Close()

	var recovered bytes.Buffer
	if err := est2.SaveState(&recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.String() != live.String() {
		t.Fatalf("recovered estimator state differs from pre-crash state\npre:  %s\npost: %s",
			live.String(), recovered.String())
	}

	// Independent reconstruction: newest snapshot + journal replay via
	// Dump must produce the identical state (snapshot+replay invariant).
	snap, recs, err := wal.Dump(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("rotation happened but Dump found no snapshot")
	}
	manual, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := manual.LoadState(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		manual.Feedback(r.Outcome())
	}
	var rebuilt bytes.Buffer
	if err := manual.SaveState(&rebuilt); err != nil {
		t.Fatal(err)
	}
	if rebuilt.String() != recovered.String() {
		t.Fatalf("snapshot+replay differs from recovered state\nreplay: %s\nrecovered: %s",
			rebuilt.String(), recovered.String())
	}

	// The recovered daemon keeps serving and journaling.
	resp, err := http.Post(ts2.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"user":1,"app":1,"nodes":1,"req_mem_mb":32,"req_time_s":600}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-recovery submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDaemonCrashRecoveryConcurrentRotation: rotations racing live
// completions — routed through srv.Quiesce exactly as main's persist
// does — must never lose an acked feedback event. A rotation landing
// between a record's journal append and its training would snapshot
// pre-record state and delete the journal holding the record; recovery
// after an abandon would then diverge from the pre-crash live state.
func TestDaemonCrashRecoveryConcurrentRotation(t *testing.T) {
	dir := t.TempDir()
	ts, srv, est, l := walDaemon(t, dir)

	stop := make(chan struct{})
	rotErr := make(chan error, 1)
	go func() {
		rotations := 0
		for {
			select {
			case <-stop:
				if rotations == 0 {
					rotErr <- fmt.Errorf("no rotation ever ran")
				} else {
					rotErr <- nil
				}
				return
			default:
			}
			if err := srv.Quiesce(func() error { return l.Rotate(est.SaveState) }); err != nil {
				rotErr <- fmt.Errorf("rotation %d: %w", rotations, err)
				return
			}
			rotations++
		}
	}()

	const clients, perClient = 4, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"user":%d,"app":%d,"nodes":1,"req_mem_mb":32,"req_time_s":600}`, c, i%3)
				resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				var v server.JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil || v.State != server.StateRunning {
					t.Errorf("submit: %v state %q", err, v.State)
					return
				}
				resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%d/complete", ts.URL, v.ID),
					"application/json", strings.NewReader(`{"success":true}`))
				if err != nil {
					t.Errorf("complete: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("complete: status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-rotErr; err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics(); m.WALErrors != 0 || m.WALRecords != clients*perClient {
		t.Fatalf("wal_records=%d wal_errors=%d, want %d and 0", m.WALRecords, m.WALErrors, clients*perClient)
	}

	var live bytes.Buffer
	if err := est.SaveState(&live); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: abandon the directory without drain, Close, or a final
	// rotation, and recover from it alone.
	ts.Close()
	ts2, _, est2, l2 := walDaemon(t, dir)
	defer ts2.Close()
	defer l2.Close()

	var recovered bytes.Buffer
	if err := est2.SaveState(&recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.String() != live.String() {
		t.Fatalf("acked feedback lost across rotation+crash\npre:  %s\npost: %s",
			live.String(), recovered.String())
	}

	// Independent reconstruction from the directory must agree too.
	snap, recs, err := wal.Dump(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("rotations happened but Dump found no snapshot")
	}
	manual, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{Alpha: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := manual.LoadState(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		manual.Feedback(r.Outcome())
	}
	var rebuilt bytes.Buffer
	if err := manual.SaveState(&rebuilt); err != nil {
		t.Fatal(err)
	}
	if rebuilt.String() != recovered.String() {
		t.Fatalf("snapshot+replay differs from recovered state\nreplay: %s\nrecovered: %s",
			rebuilt.String(), recovered.String())
	}
}

// TestDaemonRecoveryNoRotation: without any rotation every acked
// completion is a journal record; the replayed JobID set must contain
// every acked job exactly once.
func TestDaemonRecoveryNoRotation(t *testing.T) {
	dir := t.TempDir()
	ts, srv, _, l := walDaemon(t, dir)
	var acked []int64
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"user":%d,"app":0,"nodes":1,"req_mem_mb":32,"req_time_s":600}`, i%4)
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%d/complete", ts.URL, v.ID),
			"application/json", strings.NewReader(`{"success":true}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			acked = append(acked, v.ID)
		}
		resp.Body.Close()
	}
	ts.Close() // abandon: no l.Close(), no rotation
	if m := srv.Metrics(); m.WALRecords != uint64(len(acked)) {
		t.Fatalf("wal_records=%d, acked=%d", m.WALRecords, len(acked))
	}

	_, recs, err := wal.Dump(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int64]int)
	for _, r := range recs {
		got[r.JobID]++
	}
	for _, id := range acked {
		if got[id] != 1 {
			t.Errorf("acked job %d appears %d times in the journal, want 1", id, got[id])
		}
	}
	if len(recs) != len(acked) {
		t.Errorf("journal has %d records, want exactly the %d acked", len(recs), len(acked))
	}
	_ = l // the abandoned log: its descriptor dies with the test process
}
