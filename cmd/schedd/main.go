// Command schedd runs the estimation-aware scheduler as an HTTP daemon:
// the paper's Figure 2 loop in wall-clock time. Jobs are submitted over
// the JSON API, matched using learned estimates of their actual
// requirements, and completion reports train the estimator. Learned
// similarity-group state can be persisted across restarts — either as
// periodic snapshots (-state) or, for crash-grade durability, as a
// write-ahead feedback journal with snapshot rotation (-wal-dir): every
// acked completion hits the fsynced journal before the estimator trains
// on it, and restart recovery replays exactly the acked feedback stream.
//
// Usage:
//
//	schedd -addr :8080                          # paper cluster, α=2 β=0
//	schedd -cluster "512x32,512x24" -alpha 2    # explicit cluster spec
//	schedd -state /var/lib/schedd/groups.json   # load + periodically save state
//	schedd -wal-dir /var/lib/schedd/wal         # durable feedback WAL + snapshots
//	schedd -wal-dir ... -wal-group-commit       # batched-fsync durability (group commit)
//	schedd -wal-group-window 2ms -wal-group-max 128   # widen the commit window
//	schedd -shards 64 -debug-addr :6060         # wider striping + pprof/metrics
//	schedd -drain-timeout 30s                   # graceful-shutdown deadline
//	schedd -wire-addr :8081                     # swp binary batch protocol listener
//	schedd -route "n0=h0:8081,n1=h1:8081" -wire-addr :8081   # stateless router tier
//	schedd -route "n0=h0:8081/s0:8081" -metrics-addr :6070   # + standby failover, health metrics
//	schedd -follow h0:8081 -wal-dir /var/lib/wal             # WAL-shipping follower
//	schedd -follow h0:8081 -wal-dir ... -wire-addr s0:8081 -promote-misses 5
//	                                                         # + auto-promotion on leader death
//
// API (see internal/server):
//
//	POST /api/v1/jobs                {"user":3,"app":7,"nodes":32,"req_mem_mb":32,"req_time_s":600}
//	POST /api/v1/jobs/{id}/complete  {"success":true,"used_mem_mb":5.2}
//	POST /api/v1/jobs:batch          {"jobs":[...]}
//	POST /api/v1/complete:batch      {"completions":[{"id":7,"success":true}]}
//	GET  /api/v1/jobs/{id}  /api/v1/status  /api/v1/estimates  /api/v1/healthz
//
// With -wire-addr set, a third listener serves the swp binary batch
// protocol (internal/wire): length-prefixed CRC-framed submit/complete
// batches over persistent TCP connections, for high-rate clients that
// outgrow HTTP+JSON. Both protocols drive the same scheduling core, so
// a mixed fleet of HTTP and wire clients trains one estimator.
//
// On SIGTERM/SIGINT the daemon flips /api/v1/healthz to 503 (so load
// balancers stop routing to it), drains in-flight requests up to
// -drain-timeout, logs how many were drained vs aborted, takes a final
// durable snapshot, and exits.
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ and the serving counters at GET /api/v1/metrics. It is
// a separate listener so profiling and scraping can stay firewalled off
// from the job-submission API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/server"
	"overprov/internal/units"
	"overprov/internal/wal"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		clSpec         = flag.String("cluster", "512x32,512x24", "cluster pools as <nodes>x<memMB>[,...]")
		alpha          = flag.Float64("alpha", 2, "Algorithm 1 learning rate α")
		beta           = flag.Float64("beta", 0, "Algorithm 1 damping β")
		explicit       = flag.Bool("explicit", false, "accept used_mem_mb in completion reports")
		state          = flag.String("state", "", "estimator state file (loaded at start, saved periodically)")
		walDir         = flag.String("wal-dir", "", "feedback WAL directory (durable journal + rotated snapshots)")
		walGroup       = flag.Bool("wal-group-commit", false, "batch concurrent WAL appends into shared fsyncs (group commit)")
		walGroupWindow = flag.Duration("wal-group-window", 0,
			"how long a group-commit leader lingers for more records before fsyncing (0 = commit immediately; batching still happens under load)")
		walGroupMax = flag.Int("wal-group-max", 64, "max records per group-commit fsync window")
		saveEach    = flag.Duration("save-interval", time.Minute, "state save / WAL rotation period")
		drainFor    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		shards      = flag.Int("shards", estimate.DefaultShards, "estimator lock stripes (rounded up to a power of two)")
		debug       = flag.String("debug-addr", "", "optional second listener for /debug/pprof/ and /api/v1/metrics")
		wireAddr    = flag.String("wire-addr", "", "optional listener for the swp binary batch protocol")
		route       = flag.String("route", "",
			"run as a stateless swp router over name=addr backends (comma-separated; requires -wire-addr)")
		routePool   = flag.Int("route-pool", 4, "router: pooled connections per backend")
		metricsAddr = flag.String("metrics-addr", "",
			"router: optional listener for the self-healing counters (GET /api/v1/metrics)")
		probeEvery = flag.Duration("probe-interval", time.Second, "router: health-probe period per backend")
		probeWait  = flag.Duration("probe-timeout", time.Second, "router: per-probe deadline")
		follow     = flag.String("follow", "",
			"run as a WAL-shipping follower of the given backend swp address (requires -wal-dir)")
		promoteMisses = flag.Int("promote-misses", 0,
			"follower: consecutive failed polls before the leader is declared dead and the mirror auto-promotes (0 = manual promotion only; requires -wire-addr)")
		promoteWindow = flag.Duration("promote-after", 0,
			"follower: minimum silence since the last leader contact before promotion may fire (0 = misses x poll interval)")
	)
	flag.Parse()
	if *route != "" && *follow != "" {
		log.Fatalf("schedd: -route and -follow are mutually exclusive")
	}
	if *route != "" {
		if *wireAddr == "" {
			log.Fatalf("schedd: -route requires -wire-addr (the router's client-facing listener)")
		}
		if *walDir != "" || *state != "" {
			log.Fatalf("schedd: the router tier is stateless; -wal-dir/-state do not apply")
		}
		runRouter(routerOpts{
			routeSpec:   *route,
			wireAddr:    *wireAddr,
			metricsAddr: *metricsAddr,
			poolSize:    *routePool,
			probeEvery:  *probeEvery,
			probeWait:   *probeWait,
			drainFor:    *drainFor,
		})
		return
	}
	if *follow != "" {
		if *walDir == "" {
			log.Fatalf("schedd: -follow requires -wal-dir (where the mirrored WAL lands)")
		}
		if *state != "" {
			log.Fatalf("schedd: -follow mirrors a WAL; -state does not apply")
		}
		runFollower(followerOpts{
			leaderAddr:    *follow,
			walDir:        *walDir,
			logEach:       *saveEach,
			wireAddr:      *wireAddr,
			promoteMisses: *promoteMisses,
			promoteWindow: *promoteWindow,
			clSpec:        *clSpec,
			alpha:         *alpha,
			beta:          *beta,
			explicit:      *explicit,
			shards:        *shards,
			walOpts: wal.Options{
				GroupCommit: *walGroup,
				GroupWindow: *walGroupWindow,
				GroupMax:    *walGroupMax,
			},
			drainFor: *drainFor,
		})
		return
	}
	if *state != "" && *walDir != "" {
		log.Fatalf("schedd: -state and -wal-dir are mutually exclusive (the WAL keeps its own snapshots)")
	}
	if (*walGroup || *walGroupWindow != 0) && *walDir == "" {
		log.Fatalf("schedd: -wal-group-commit/-wal-group-window require -wal-dir")
	}

	cl, err := parseCluster(*clSpec)
	if err != nil {
		log.Fatalf("schedd: %v", err)
	}
	// The estimator is shared between HTTP handler goroutines and the
	// periodic state saver below; the lock-striped wrapper is the only
	// synchronization both sides go through. -shards 1 degenerates to a
	// single stripe, i.e. the old global-mutex behavior.
	est, err := estimate.NewShardedSynchronized(estimate.SuccessiveApproxConfig{
		Alpha: *alpha, Beta: *beta, Round: cl,
	}, *shards)
	if err != nil {
		log.Fatalf("schedd: %v", err)
	}

	var feedbackLog *wal.Log
	switch {
	case *walDir != "":
		feedbackLog, err = wal.Open(*walDir, wal.Options{
			GroupCommit: *walGroup,
			GroupWindow: *walGroupWindow,
			GroupMax:    *walGroupMax,
		})
		if err != nil {
			log.Fatalf("schedd: %v", err)
		}
		stats, err := feedbackLog.Recover(est.LoadState, func(r wal.Record) error {
			est.Feedback(r.Outcome())
			return nil
		})
		if err != nil {
			log.Fatalf("schedd: recovering %s: %v", *walDir, err)
		}
		log.Printf("schedd: recovered %d similarity groups from %s (snapshot %d + %d journal records)",
			est.NumGroups(), *walDir, stats.SnapshotSeq, stats.Records)
		if stats.TornBytes > 0 {
			log.Printf("schedd: truncated %d torn byte(s) from the journal tail (corrupt=%v, dropped %d journal(s))",
				stats.TornBytes, stats.Corrupt, stats.DroppedJournals)
		}
	case *state != "":
		if f, err := os.Open(*state); err == nil {
			loadErr := est.LoadState(f)
			f.Close()
			if loadErr != nil {
				log.Fatalf("schedd: loading %s: %v", *state, loadErr)
			}
			log.Printf("schedd: restored %d similarity groups from %s", est.NumGroups(), *state)
		} else if !os.IsNotExist(err) {
			log.Fatalf("schedd: %v", err)
		}
	}

	srvCfg := server.Config{
		Cluster:          cl,
		Estimator:        est,
		ExplicitFeedback: *explicit,
	}
	if feedbackLog != nil {
		srvCfg.Journal = feedbackLog
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		log.Fatalf("schedd: %v", err)
	}

	// persist makes learned state durable: WAL rotation (snapshot +
	// fresh journal generation) when the WAL is on, otherwise an
	// fsynced atomic rewrite of the -state file. Rotation goes through
	// srv.Quiesce so it can never run between a completion's journal
	// append and its estimator training — a snapshot taken in that
	// window would miss the record while rotation deletes the journal
	// holding it, losing acked feedback across a crash.
	persist := func() {
		switch {
		case feedbackLog != nil:
			if err := srv.Quiesce(func() error {
				return feedbackLog.Rotate(est.SaveState)
			}); err != nil {
				log.Printf("schedd: rotating WAL: %v", err)
			}
		case *state != "":
			if err := atomicWriteFile(*state, est.SaveState); err != nil {
				log.Printf("schedd: saving state: %v", err)
			}
		}
	}

	// Per-request server timeouts: a stuck client cannot pin a handler
	// goroutine (and its connection) forever. Generous enough for the
	// batch endpoints' largest payloads.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("schedd: %s on %s, estimator %s", cl, *addr, est.Name())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("schedd: %v", err)
		}
	}()

	var debugSrv *http.Server
	if *debug != "" {
		debugSrv = &http.Server{
			Addr:              *debug,
			Handler:           debugMux(srv),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("schedd: pprof and metrics on %s", *debug)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("schedd: debug listener: %v", err)
			}
		}()
	}

	var wireSrv *server.WireServer
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("schedd: wire listener: %v", err)
		}
		wireSrv = server.NewWireServer(srv)
		go func() {
			log.Printf("schedd: swp wire protocol on %s", ln.Addr())
			if err := wireSrv.Serve(ln); err != nil {
				log.Fatalf("schedd: wire listener: %v", err)
			}
		}()
	}

	ticker := time.NewTicker(*saveEach)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			persist()
		case s := <-sig:
			log.Printf("schedd: %v — draining (deadline %v)", s, *drainFor)
			// Order matters: drain first so in-flight completions reach
			// the journal and estimator, then snapshot what they taught.
			res := drain(srv, httpSrv, debugSrv, wireSrv, *drainFor)
			log.Printf("schedd: %s", res)
			persist()
			if feedbackLog != nil {
				if err := feedbackLog.Close(); err != nil {
					log.Printf("schedd: closing WAL: %v", err)
				}
			}
			return
		}
	}
}

// debugMux assembles the -debug-addr handler: the standard pprof
// endpoints (registered explicitly — the daemon never serves
// http.DefaultServeMux) plus the serving counters.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /api/v1/metrics", srv.MetricsHandler())
	return mux
}

// parseCluster parses "512x32,512x24" into pool specs.
func parseCluster(spec string) (*cluster.Cluster, error) {
	var specs []cluster.Spec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		nodes, mem, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("bad pool %q (want <nodes>x<memMB>)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(nodes))
		if err != nil {
			return nil, fmt.Errorf("bad node count in %q: %v", part, err)
		}
		m, err := strconv.ParseFloat(strings.TrimSpace(mem), 64)
		if err != nil {
			return nil, fmt.Errorf("bad memory in %q: %v", part, err)
		}
		specs = append(specs, cluster.Spec{Nodes: n, Mem: units.MemSize(m)})
	}
	return cluster.New(specs...)
}
