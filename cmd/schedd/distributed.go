package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"overprov/internal/repl"
	"overprov/internal/router"
	"overprov/internal/wal"
)

// The two distributed-tier modes. Both replace the normal scheduling
// daemon entirely:
//
//	schedd -route "n0=host0:8081/standby0:8081,n1=host1:8081" -wire-addr :8081
//	    runs the stateless router tier — swp in, swp out, batches split
//	    by similarity-group key over the consistent-hash ring. Each
//	    backend is health-probed; an optional "/standby" address names
//	    the follower that will be swapped in automatically when the
//	    primary is declared down.
//
//	schedd -follow host0:8081 -wal-dir /var/lib/schedd/wal \
//	       -wire-addr standby0:8081 -promote-misses 5
//	    runs a WAL-shipping follower: mirrors the backend's feedback
//	    journal (acked prefix only) into -wal-dir. With -promote-misses
//	    set, the follower pre-binds -wire-addr (the address routers know
//	    as the standby) and, when the leader is declared dead, promotes
//	    the mirror in place — ordinary crash recovery over the mirrored
//	    WAL — and starts serving swp on that listener, no operator in
//	    the loop. Without -promote-misses, promotion stays manual:
//	    restart without -follow on the same -wal-dir.

// parseBackends parses "name=addr[/standby],...". Names are the stable
// ring identities, so spell them the same on every router. The optional
// standby is the wire address a co-located follower has pre-bound; the
// router swaps it in when the primary is declared down.
func parseBackends(spec string) ([]router.Backend, error) {
	var backends []router.Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad backend %q (want name=addr[/standby])", part)
		}
		addr, standby, _ := strings.Cut(addr, "/")
		if addr == "" {
			return nil, fmt.Errorf("bad backend %q (empty primary address)", part)
		}
		backends = append(backends, router.Backend{Name: name, Addr: addr, Standby: standby})
	}
	return backends, nil
}

// routerOpts carries the -route flag set into runRouter.
type routerOpts struct {
	routeSpec   string
	wireAddr    string
	metricsAddr string
	poolSize    int
	probeEvery  time.Duration
	probeWait   time.Duration
	drainFor    time.Duration
}

// runRouter serves the router tier until SIGTERM/SIGINT, then drains
// client connections like the scheduling daemon does. Health probes run
// for the whole lifetime; -metrics-addr exposes the self-healing
// counters (retries, failovers, degraded admissions, per-backend
// health) for scraping.
func runRouter(o routerOpts) {
	backends, err := parseBackends(o.routeSpec)
	if err != nil {
		log.Fatalf("schedd: -route: %v", err)
	}
	r, err := router.New(router.Config{
		Backends: backends,
		PoolSize: o.poolSize,
		Probe:    router.ProbeConfig{Interval: o.probeEvery, Timeout: o.probeWait},
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("schedd: %v", err)
	}
	ln, err := net.Listen("tcp", o.wireAddr)
	if err != nil {
		log.Fatalf("schedd: wire listener: %v", err)
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	r.StartProbes(probeCtx)

	var metricsSrv *http.Server
	if o.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /api/v1/metrics", r.MetricsHandler())
		metricsSrv = &http.Server{
			Addr:              o.metricsAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("schedd: router metrics on %s", o.metricsAddr)
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("schedd: metrics listener: %v", err)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	log.Printf("schedd: routing swp on %s across %d backends (probe every %v)",
		ln.Addr(), len(backends), o.probeEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("schedd: router: %v", err)
		}
	case s := <-sig:
		log.Printf("schedd: %v — draining router (deadline %v)", s, o.drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), o.drainFor)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			log.Printf("schedd: router drain: %v", err)
		}
		if metricsSrv != nil {
			_ = metricsSrv.Shutdown(ctx)
		}
	}
}

// followerOpts carries the -follow flag set into runFollower, plus the
// daemon shape (cluster, estimator, WAL options) the follower grows
// into if it promotes itself.
type followerOpts struct {
	leaderAddr string
	walDir     string
	logEach    time.Duration

	// Auto-promotion. promoteMisses == 0 keeps the old manual flow.
	wireAddr      string
	promoteMisses int
	promoteWindow time.Duration

	// Promoted-daemon shape — mirrors the leader's own flags.
	clSpec   string
	alpha    float64
	beta     float64
	explicit bool
	shards   int
	walOpts  wal.Options
	drainFor time.Duration
}

// runFollower mirrors a backend's WAL until SIGTERM/SIGINT, logging
// replication lag once per interval tick. With auto-promotion enabled
// it also pre-binds the standby wire listener and, on leader death,
// promotes the mirror and serves from it.
func runFollower(o followerOpts) {
	m, err := wal.OpenMirror(o.walDir, nil)
	if err != nil {
		log.Fatalf("schedd: opening mirror %s: %v", o.walDir, err)
	}
	var standbyLn net.Listener
	if o.promoteMisses > 0 {
		if o.wireAddr == "" {
			log.Fatalf("schedd: -promote-misses requires -wire-addr (the standby address routers will fail over to)")
		}
		// Bound now, served only after promotion: the address is promised
		// to routers in their -route spec, so it must be ours from the
		// start, not grabbed in the middle of a failover.
		standbyLn, err = net.Listen("tcp", o.wireAddr)
		if err != nil {
			log.Fatalf("schedd: standby wire listener: %v", err)
		}
	}
	f := &repl.Follower{
		Addr:          o.leaderAddr,
		Mirror:        m,
		Logf:          log.Printf,
		DeadThreshold: o.promoteMisses,
		DeadWindow:    o.promoteWindow,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	if o.promoteMisses > 0 {
		log.Printf("schedd: following %s into %s (standby %s, promote after %d missed polls)",
			o.leaderAddr, o.walDir, standbyLn.Addr(), o.promoteMisses)
	} else {
		log.Printf("schedd: following %s into %s", o.leaderAddr, o.walDir)
	}

	ticker := time.NewTicker(o.logEach)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case err := <-done:
			if errors.Is(err, repl.ErrLeaderDead) && standbyLn != nil {
				promoteAndServe(m, standbyLn, o, sig)
				return
			}
			log.Fatalf("schedd: follower: %v", err)
		case <-ticker.C:
			gens, bytes := m.Lag()
			switch {
			case bytes < 0:
				log.Printf("schedd: follower lag: %d generation(s) behind (resyncing)", gens)
			default:
				log.Printf("schedd: follower lag: %d byte(s)", bytes)
			}
		case s := <-sig:
			log.Printf("schedd: %v — stopping follower", s)
			cancel()
			<-done
			if standbyLn != nil {
				_ = standbyLn.Close()
			}
			if err := m.Sync(); err != nil {
				log.Printf("schedd: syncing mirror: %v", err)
			}
			if err := m.Close(); err != nil {
				log.Printf("schedd: closing mirror: %v", err)
			}
			log.Printf("schedd: mirror %s is promotable — restart without -follow to serve from it", o.walDir)
			return
		}
	}
}

// promoteAndServe is the follower's second life: the leader was
// declared dead, so seal the mirror, recover a full scheduling daemon
// from it (the same replay any crash restart runs), and serve swp on
// the pre-bound standby listener until SIGTERM/SIGINT.
func promoteAndServe(m *wal.Mirror, ln net.Listener, o followerOpts, sig chan os.Signal) {
	log.Printf("schedd: leader %s declared dead — promoting mirror %s", o.leaderAddr, o.walDir)
	if err := m.Sync(); err != nil {
		log.Printf("schedd: syncing mirror: %v", err)
	}
	if err := m.Close(); err != nil {
		log.Printf("schedd: closing mirror: %v", err)
	}
	p, err := promoteMirror(o.walDir, o.clSpec, o.alpha, o.beta, o.explicit, o.shards, o.walOpts)
	if err != nil {
		log.Fatalf("schedd: promoting %s: %v", o.walDir, err)
	}
	go func() {
		if err := p.Wire.Serve(ln); err != nil {
			log.Fatalf("schedd: promoted wire listener: %v", err)
		}
	}()
	log.Printf("schedd: promoted — %d similarity groups recovered (snapshot %d + %d records, %d torn byte(s) repaired), serving swp on %s",
		p.Est.NumGroups(), p.Recovery.SnapshotSeq, p.Recovery.Records, p.Recovery.TornBytes, ln.Addr())

	persist := func() {
		if err := p.Srv.Quiesce(func() error {
			return p.Log.Rotate(p.Est.SaveState)
		}); err != nil {
			log.Printf("schedd: rotating WAL: %v", err)
		}
	}
	ticker := time.NewTicker(o.logEach)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			persist()
		case s := <-sig:
			log.Printf("schedd: %v — draining promoted node (deadline %v)", s, o.drainFor)
			p.Srv.BeginDrain()
			ctx, cancel := context.WithTimeout(context.Background(), o.drainFor)
			if err := p.Wire.Shutdown(ctx); err != nil {
				log.Printf("schedd: wire drain: %v", err)
			}
			cancel()
			persist()
			if err := p.Log.Close(); err != nil {
				log.Printf("schedd: closing WAL: %v", err)
			}
			return
		}
	}
}
