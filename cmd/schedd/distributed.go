package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"overprov/internal/repl"
	"overprov/internal/router"
	"overprov/internal/wal"
)

// The two distributed-tier modes. Both replace the normal scheduling
// daemon entirely:
//
//	schedd -route "n0=host0:8081,n1=host1:8081" -wire-addr :8081
//	    runs the stateless router tier — swp in, swp out, batches split
//	    by similarity-group key over the consistent-hash ring.
//
//	schedd -follow host0:8081 -wal-dir /var/lib/schedd/wal
//	    runs a WAL-shipping follower: mirrors the backend's feedback
//	    journal (acked prefix only) into -wal-dir. Promotion is simply
//	    restarting without -follow on the same -wal-dir — recovery
//	    replays the mirrored stream like any crash restart.

// parseBackends parses "name=addr,name=addr". Names are the stable
// ring identities, so spell them the same on every router.
func parseBackends(spec string) ([]router.Backend, error) {
	var backends []router.Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad backend %q (want name=addr)", part)
		}
		backends = append(backends, router.Backend{Name: name, Addr: addr})
	}
	return backends, nil
}

// runRouter serves the router tier until SIGTERM/SIGINT, then drains
// client connections like the scheduling daemon does.
func runRouter(routeSpec, wireAddr string, poolSize int, drainFor time.Duration) {
	backends, err := parseBackends(routeSpec)
	if err != nil {
		log.Fatalf("schedd: -route: %v", err)
	}
	r, err := router.New(router.Config{Backends: backends, PoolSize: poolSize})
	if err != nil {
		log.Fatalf("schedd: %v", err)
	}
	ln, err := net.Listen("tcp", wireAddr)
	if err != nil {
		log.Fatalf("schedd: wire listener: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	log.Printf("schedd: routing swp on %s across %d backends", ln.Addr(), len(backends))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("schedd: router: %v", err)
		}
	case s := <-sig:
		log.Printf("schedd: %v — draining router (deadline %v)", s, drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), drainFor)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			log.Printf("schedd: router drain: %v", err)
		}
	}
}

// runFollower mirrors a backend's WAL until SIGTERM/SIGINT, logging
// replication lag once per interval tick.
func runFollower(leaderAddr, walDir string, logEach time.Duration) {
	m, err := wal.OpenMirror(walDir, nil)
	if err != nil {
		log.Fatalf("schedd: opening mirror %s: %v", walDir, err)
	}
	f := &repl.Follower{
		Addr:   leaderAddr,
		Mirror: m,
		Logf:   log.Printf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	log.Printf("schedd: following %s into %s", leaderAddr, walDir)

	ticker := time.NewTicker(logEach)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			gens, bytes := m.Lag()
			switch {
			case bytes < 0:
				log.Printf("schedd: follower lag: %d generation(s) behind (resyncing)", gens)
			default:
				log.Printf("schedd: follower lag: %d byte(s)", bytes)
			}
		case s := <-sig:
			log.Printf("schedd: %v — stopping follower", s)
			cancel()
			<-done
			if err := m.Sync(); err != nil {
				log.Printf("schedd: syncing mirror: %v", err)
			}
			if err := m.Close(); err != nil {
				log.Printf("schedd: closing mirror: %v", err)
			}
			log.Printf("schedd: mirror %s is promotable — restart without -follow to serve from it", walDir)
			return
		}
	}
}
