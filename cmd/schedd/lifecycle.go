package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"overprov/internal/server"
)

// atomicWriteFile writes path durably: the content goes to a temp file
// in the same directory, is fsynced, atomically renamed over path, and
// the directory is fsynced so the rename itself survives a crash. The
// pre-WAL state saver renamed without either fsync — a crash shortly
// after "saving" could lose the snapshot entirely (the satellite bug
// this helper fixes).
func atomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// drainResult reports what a graceful shutdown achieved.
type drainResult struct {
	// Drained is how many in-flight requests completed within the
	// deadline; Aborted how many were cut off when it expired.
	Drained, Aborted int64
	// Clean is true when every listener shut down inside the deadline.
	Clean bool
}

func (d drainResult) String() string {
	state := "clean"
	if !d.Clean {
		state = "deadline exceeded"
	}
	return fmt.Sprintf("drained %d request(s), aborted %d (%s)", d.Drained, d.Aborted, state)
}

// drain gracefully shuts down the API listener (and the optional debug
// and wire listeners) with one shared deadline: readiness flips to
// draining first, then each listener's Shutdown waits for in-flight
// requests, and whatever is still running at the deadline is aborted
// by Close. The old shutdown path called Close directly, dropping
// in-flight completion reports — feedback the estimator never saw.
func drain(srv *server.Server, httpSrv, debugSrv *http.Server, wireSrv *server.WireServer, timeout time.Duration) drainResult {
	srv.BeginDrain()
	before := srv.InFlight()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	res := drainResult{Clean: true}
	if err := httpSrv.Shutdown(ctx); err != nil {
		res.Clean = false
		_ = httpSrv.Close()
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			res.Clean = false
			_ = debugSrv.Close()
		}
	}
	if wireSrv != nil {
		// WireServer.Shutdown lets each connection finish the frame it is
		// processing (its completion report reaches the estimator) and
		// force-closes stragglers at the deadline.
		if err := wireSrv.Shutdown(ctx); err != nil {
			res.Clean = false
		}
	}
	res.Aborted = srv.InFlight()
	res.Drained = before - res.Aborted
	if res.Drained < 0 {
		res.Drained = 0
	}
	return res
}
