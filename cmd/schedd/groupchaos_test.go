// Group-commit daemon chaos: the crash-recovery contract of
// chaos_test.go rerun with the batched-fsync pipeline on, mixing
// batch and single completions with rotations racing through
// srv.Quiesce — the deployment shape of -wal-dir -wal-group-commit.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"overprov/internal/server"
	"overprov/internal/wal"
)

// TestDaemonGroupCommitCrashRecovery: a group-commit daemon under
// concurrent batch and single completions, with rotations racing the
// load through Quiesce, is SIGKILL-abandoned with a torn journal tail.
// A fresh per-record daemon recovering from the directory alone must
// hold state byte-identical to the pre-crash live state — the two
// modes share one on-disk format — and the run must show the fsync
// amortization the pipeline exists for.
func TestDaemonGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ts, srv, est, l := walDaemonOpts(t, dir, wal.Options{
		GroupCommit: true,
		GroupWindow: 2 * time.Millisecond, // widen windows under test load
	})

	stop := make(chan struct{})
	rotErr := make(chan error, 1)
	go func() {
		rotations := 0
		// Rotate before checking stop, so at least one rotation races the
		// load even if this goroutine's first time slice lands late.
		for {
			if err := srv.Quiesce(func() error { return l.Rotate(est.SaveState) }); err != nil {
				rotErr <- fmt.Errorf("rotation %d: %w", rotations, err)
				return
			}
			rotations++
			select {
			case <-stop:
				rotErr <- nil
				return
			default:
			}
		}
	}()

	const clients, perClient, batchSize = 4, 24, 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pending []int64
			flush := func() {
				if len(pending) == 0 {
					return
				}
				var sb strings.Builder
				sb.WriteString(`{"completions":[`)
				for i, id := range pending {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, `{"id":%d,"success":true}`, id)
				}
				sb.WriteString(`]}`)
				resp, err := http.Post(ts.URL+"/api/v1/complete:batch",
					"application/json", strings.NewReader(sb.String()))
				if err != nil {
					t.Errorf("complete:batch: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("complete:batch: status %d", resp.StatusCode)
				}
				resp.Body.Close()
				pending = pending[:0]
			}
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"user":%d,"app":%d,"nodes":1,"req_mem_mb":32,"req_time_s":600}`, c, i%3)
				resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				var v server.JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil || v.State != server.StateRunning {
					t.Errorf("submit: %v state %q", err, v.State)
					return
				}
				// Odd clients batch their completions; even clients report
				// one at a time — both paths hit the same group pipeline.
				if c%2 == 1 {
					pending = append(pending, v.ID)
					if len(pending) == batchSize {
						flush()
					}
					continue
				}
				resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%d/complete", ts.URL, v.ID),
					"application/json", strings.NewReader(`{"success":true}`))
				if err != nil {
					t.Errorf("complete: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("complete: status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
			flush()
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-rotErr; err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.WALErrors != 0 || m.WALRecords != clients*perClient {
		t.Fatalf("wal_records=%d wal_errors=%d, want %d and 0", m.WALRecords, m.WALErrors, clients*perClient)
	}
	if m.WALSyncs == 0 || m.WALSyncs >= m.WALRecords {
		t.Fatalf("wal_syncs=%d over %d records: the pipeline never shared an fsync", m.WALSyncs, m.WALRecords)
	}
	t.Logf("group commit: %d records over %d fsyncs (%.2f records/fsync)",
		m.WALRecords, m.WALSyncs, float64(m.WALRecords)/float64(m.WALSyncs))

	var live bytes.Buffer
	if err := est.SaveState(&live); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: abandon without drain or Close, plus a torn tail on the
	// current journal.
	ts.Close()
	journalPath := filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", l.Seq()))
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x41, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery does not need group commit on: the journal format is
	// mode-independent, so a plain daemon must reconstruct the state.
	ts2, _, est2, l2 := walDaemon(t, dir)
	defer ts2.Close()
	defer l2.Close()

	var recovered bytes.Buffer
	if err := est2.SaveState(&recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.String() != live.String() {
		t.Fatalf("recovered estimator state differs from pre-crash state\npre:  %s\npost: %s",
			live.String(), recovered.String())
	}
}
