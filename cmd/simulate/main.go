// Command simulate runs one trace-driven simulation: workload × cluster
// × scheduling policy × estimator, and prints the paper's metrics. It
// also regenerates Figure 7's single-group estimate trajectory.
//
// Usage:
//
//	simulate -small                       # baseline vs paper estimator, quick
//	simulate -est successive -load 0.9    # one estimator at one load
//	simulate -est rl -policy easy         # reinforcement learning + backfilling
//	simulate -fig7                        # the Figure 7 trajectory
package main

import (
	"flag"
	"fmt"
	"os"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/experiments"
	"overprov/internal/metrics"
	"overprov/internal/profiling"
	"overprov/internal/report"
	"overprov/internal/sched"
	"overprov/internal/sim"
	"overprov/internal/trace"
	"overprov/internal/units"
)

func main() {
	var (
		small     = flag.Bool("small", false, "use the reduced synthetic trace")
		in        = flag.String("in", "", "SWF file to simulate (default: synthetic trace)")
		load      = flag.Float64("load", 1.0, "offered load to scale the trace to")
		secondMem = flag.Float64("secondmem", 24, "second pool per-node memory (MB)")
		estName   = flag.String("est", "", "estimator: identity|successive|lastinstance|rl|regression|oracle|robust (default: compare identity and successive)")
		policy    = flag.String("policy", "fcfs", "scheduling policy: fcfs|easy|conservative|sjf")
		alpha     = flag.Float64("alpha", 2, "Algorithm 1 learning rate α")
		beta      = flag.Float64("beta", 0, "Algorithm 1 damping β")
		spurious  = flag.Float64("spurious", 0, "spurious failure probability per dispatch")
		seed      = flag.Uint64("seed", 7, "simulation seed")
		fig7      = flag.Bool("fig7", false, "print the Figure 7 estimate trajectory and exit")
		journal   = flag.String("journal", "", "write the event journal of the (last) run to this file")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *fig7 {
		r, err := experiments.Figure7(experiments.Figure7Config{Alpha: *alpha, Beta: *beta})
		if err != nil {
			fatal(err)
		}
		if err := r.Table().WriteASCII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	s := experiments.FullScale()
	if *small {
		s = experiments.SmallScale()
	}
	tr, err := loadWorkload(s, *in)
	if err != nil {
		fatal(err)
	}

	clf := func() (*cluster.Cluster, error) {
		return cluster.CM5Heterogeneous(units.MemSize(*secondMem))
	}
	probe, err := clf()
	if err != nil {
		fatal(err)
	}
	scaled, err := tr.ScaleToOfferedLoad(*load, probe.TotalNodes())
	if err != nil {
		fatal(err)
	}

	pol, err := pickPolicy(*policy)
	if err != nil {
		fatal(err)
	}

	names := []string{"identity", "successive"}
	if *estName != "" {
		names = []string{*estName}
	}

	tbl := report.NewTable(
		fmt.Sprintf("simulate — %s, load %.2f, policy %s", probe, *load, pol.Name()),
		"estimator", "utilization", "occupancy", "slowdown", "mean wait", "fail rate", "lowered", "rejected")
	for _, name := range names {
		est, explicit, err := pickEstimator(name, *alpha, *beta, *seed, probe.Capacities())
		if err != nil {
			fatal(err)
		}
		cl, err := clf()
		if err != nil {
			fatal(err)
		}
		cfg := sim.Config{
			Trace:               scaled,
			Cluster:             cl,
			Estimator:           est,
			Policy:              pol,
			ExplicitFeedback:    explicit,
			SpuriousFailureProb: *spurious,
			Seed:                *seed,
		}
		var jr *sim.Journal
		if *journal != "" {
			jr = &sim.Journal{}
			cfg.Journal = jr
		}
		res, err := sim.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if jr != nil {
			if err := writeJournal(*journal, jr); err != nil {
				fatal(err)
			}
		}
		sum := metrics.Summarize(res)
		tbl.AddRow(est.Name(), sum.Utilization, sum.Occupancy, sum.MeanSlowdown,
			sum.MeanWait.String(), sum.ResourceFailureRate, sum.LoweredJobFraction, sum.Rejected)
	}
	if err := tbl.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func writeJournal(path string, j *sim.Journal) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := j.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadWorkload(s experiments.Scale, path string) (*trace.Trace, error) {
	// Shared helper: understands both SWF text and .swfb binary traces
	// and applies the same preparation chain either way.
	return experiments.LoadWorkload(s, path)
}

func pickPolicy(name string) (sched.Policy, error) {
	switch name {
	case "fcfs":
		return sched.FCFS{}, nil
	case "easy":
		return sched.EASY{}, nil
	case "conservative":
		return sched.Conservative{}, nil
	case "sjf":
		return sched.SJF{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want fcfs|easy|conservative|sjf)", name)
	}
}

func pickEstimator(name string, alpha, beta float64, seed uint64, caps []units.MemSize) (estimate.Estimator, bool, error) {
	round := estimate.RounderFunc(func(m units.MemSize) (units.MemSize, bool) {
		return m.CeilTo(caps)
	})
	switch name {
	case "identity":
		return estimate.Identity{}, false, nil
	case "successive":
		e, err := estimate.NewSuccessiveApprox(estimate.SuccessiveApproxConfig{
			Alpha: alpha, Beta: beta, Round: round,
		})
		return e, false, err
	case "lastinstance":
		e, err := estimate.NewLastInstance(estimate.LastInstanceConfig{Round: round})
		return e, true, err
	case "rl":
		e, err := estimate.NewReinforcement(estimate.ReinforcementConfig{Seed: seed, Round: round})
		return e, false, err
	case "regression":
		e, err := estimate.NewRegression(estimate.RegressionConfig{Margin: 0.10, Round: round})
		return e, true, err
	case "oracle":
		return &estimate.Oracle{}, false, nil
	case "robust":
		e, err := estimate.NewRobustSearch(estimate.RobustSearchConfig{
			Alpha: alpha, FailureConfirmations: 2, Round: round,
		})
		return e, false, err
	default:
		return nil, false, fmt.Errorf("unknown estimator %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
