// Command swfstat analyses a workload trace: the over-provisioning
// histogram of Figure 1, the similarity-group size distribution of
// Figure 3, and the gain-versus-similarity scatter of Figure 4.
//
// Usage:
//
//	swfstat -fig1 -fig3 -fig4            # analyse the synthetic full trace
//	swfstat -in lanl_cm5.swf -fig1       # analyse a real SWF file
//	swfstat -small -fig3 -csv            # test-scale trace, CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"overprov/internal/experiments"
	"overprov/internal/report"
	"overprov/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "SWF file to analyse (default: generate the synthetic trace)")
		small    = flag.Bool("small", false, "use the reduced synthetic trace")
		fig1     = flag.Bool("fig1", false, "print the Figure 1 over-provisioning histogram")
		fig3     = flag.Bool("fig3", false, "print the Figure 3 group-size distribution")
		fig4     = flag.Bool("fig4", false, "print the Figure 4 gain-vs-similarity scatter")
		users    = flag.Bool("users", false, "print the heaviest users")
		topUsers = flag.Int("top", 15, "how many users to list with -users")
		arrivals = flag.Bool("arrivals", false, "print the arrival pattern")
		runtimes = flag.Bool("runtimes", false, "print the runtime distribution")
		memory   = flag.Bool("memory", false, "print the requested/used memory profile")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	anyExtra := *users || *arrivals || *runtimes || *memory
	if !*fig1 && !*fig3 && !*fig4 && !anyExtra {
		*fig1, *fig3, *fig4 = true, true, true
	}

	tr, err := loadTrace(*in, *small)
	if err != nil {
		fatal(err)
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteASCII(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	if *fig1 {
		r, err := experiments.Figure1(tr)
		if err != nil {
			fatal(err)
		}
		emit(r.Table())
	}
	if *fig3 {
		emit(experiments.Figure3(tr).Table())
	}
	if *fig4 {
		emit(experiments.Figure4(tr, 10).Table())
	}
	if *users {
		stats := trace.ByUserStats(tr)
		if len(stats) > *topUsers {
			stats = stats[:*topUsers]
		}
		t := report.NewTable("Heaviest users by node-seconds",
			"user", "jobs", "apps", "node-seconds", "mean overprovision")
		for _, u := range stats {
			t.AddRow(u.User, u.Jobs, u.Apps, u.NodeSeconds, u.MeanOverprovision)
		}
		emit(t)
	}
	if *arrivals {
		p := trace.Arrivals(tr)
		t := report.NewTable(
			fmt.Sprintf("Arrival pattern (peak hour %d, day/night ratio %s, interarrival CV %s)",
				p.PeakHour, report.FormatFloat(p.DayNightRatio),
				report.FormatFloat(p.InterarrivalCV)),
			"hour", "submissions")
		for h, c := range p.Hourly {
			t.AddRow(h, c)
		}
		emit(t)
	}
	if *runtimes {
		d := trace.Runtimes(tr)
		t := report.NewTable("Runtime distribution", "stat", "value")
		t.AddRow("min", d.Min.String())
		t.AddRow("median", d.Median.String())
		t.AddRow("mean", d.Mean.String())
		t.AddRow("p90", d.P90.String())
		t.AddRow("max", d.Max.String())
		t.AddRow("log stddev", d.LogStdDev)
		emit(t)
	}
	if *memory {
		p := trace.Memory(tr)
		t := report.NewTable(
			fmt.Sprintf("Memory profile (mean requested %v, mean used %v, reclaimable %v/job)",
				p.MeanRequested, p.MeanUsed, p.ReclaimablePerJob),
			"requested", "jobs")
		for _, lv := range p.RequestLevels {
			t.AddRow(lv.Mem.String(), lv.Jobs)
		}
		emit(t)
	}
}

func loadTrace(path string, small bool) (*trace.Trace, error) {
	s := experiments.FullScale()
	if small {
		s = experiments.SmallScale()
	}
	// Shared helper: path may be SWF text or .swfb binary.
	return experiments.LoadRawWorkload(s, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swfstat:", err)
	os.Exit(1)
}
