// Command benchjson records benchmark results as machine-readable JSON,
// so performance PRs can commit a before/after pair (BENCH_<n>.json)
// instead of pasting terminal output into commit messages.
//
// It either runs `go test -bench` itself or parses a saved output file,
// then writes the results into the "baseline" or "current" section of
// the output JSON, preserving the other section:
//
//	benchjson -as current -out BENCH_2.json -bench . -benchtime 1x
//	benchjson -as current -out BENCH_2.json -merge \
//	    -bench SimulatorThroughput -benchtime 2s -count 3
//	benchjson -as baseline -out BENCH_2.json -parse old_bench.txt
//
// With -count > 1 each benchmark keeps its median run (by ns/op). With
// -merge the new results are merged into the section instead of
// replacing it, so a long-benchtime rerun can refine one entry.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark's outcome.
type benchResult struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the custom b.ReportMetric values (jobs/s, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// section is one side of the before/after pair. The environment fields
// (gomaxprocs, num_cpu, cpu_model) pin down what hardware parallelism
// the numbers were recorded under — a jobs/s comparison between a
// 1-core and an 8-core run measures the machine, not the code.
type section struct {
	RecordedAt string                 `json:"recorded_at"`
	GoVersion  string                 `json:"go_version"`
	GoMaxProcs int                    `json:"gomaxprocs,omitempty"`
	NumCPU     int                    `json:"num_cpu,omitempty"`
	CPUModel   string                 `json:"cpu_model,omitempty"`
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// file is the on-disk BENCH_<n>.json layout.
type file struct {
	Baseline *section `json:"baseline,omitempty"`
	Current  *section `json:"current,omitempty"`
}

func main() {
	var (
		as        = flag.String("as", "current", `which section to write: "baseline" or "current"`)
		out       = flag.String("out", "BENCH_2.json", "output JSON file")
		bench     = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "passed to go test -benchtime")
		count     = flag.Int("count", 1, "runs per benchmark; the median by ns/op is kept")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		parse     = flag.String("parse", "", "parse a saved go test -bench output file instead of running")
		note      = flag.String("note", "", "free-form provenance note stored in the section")
		merge     = flag.Bool("merge", false, "merge results into the section instead of replacing it")
		allowCPU  = flag.Bool("allow-cpu-mismatch", false,
			"permit baseline and current sections recorded under differing GOMAXPROCS/CPU counts")
	)
	flag.Parse()
	if *as != "baseline" && *as != "current" {
		fatal(fmt.Errorf("-as must be baseline or current, got %q", *as))
	}

	var (
		results map[string][]benchResult
		err     error
	)
	if *parse != "" {
		data, rerr := os.ReadFile(*parse)
		if rerr != nil {
			fatal(rerr)
		}
		results, err = parseBenchOutput(string(data))
	} else {
		results, err = runBenchmarks(*pkg, *bench, *benchtime, *count)
	}
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results found"))
	}

	var f file
	if data, rerr := os.ReadFile(*out); rerr == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	}

	sec := &section{Benchmarks: map[string]benchResult{}}
	old := f.Current
	if *as == "baseline" {
		old = f.Baseline
	}
	if *merge && old != nil {
		sec = old
	}
	sec.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	sec.GoVersion = runtime.Version()
	sec.GoMaxProcs = runtime.GOMAXPROCS(0)
	sec.NumCPU = runtime.NumCPU()
	sec.CPUModel = cpuModel()
	if *note != "" {
		sec.Note = *note
	}
	for name, runs := range results {
		sec.Benchmarks[name] = median(runs)
	}
	// The written pair is a comparison: refuse to record numbers against
	// a counterpart from a machine with different parallelism unless the
	// caller explicitly accepts the mismatch. Sections from before the
	// environment fields existed are not backfilled and not checked.
	other := f.Baseline
	if *as == "baseline" {
		other = f.Current
	}
	if other != nil && other.GoMaxProcs != 0 && !*allowCPU {
		if other.GoMaxProcs != sec.GoMaxProcs || other.NumCPU != sec.NumCPU {
			fatal(fmt.Errorf(
				"core-count mismatch with the existing %s section (GOMAXPROCS %d/NumCPU %d there, %d/%d here); rerun with -allow-cpu-mismatch to record anyway",
				otherName(*as), other.GoMaxProcs, other.NumCPU, sec.GoMaxProcs, sec.NumCPU))
		}
	}
	if *as == "baseline" {
		f.Baseline = sec
	} else {
		f.Current = sec
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := sec.Benchmarks[name]
		fmt.Printf("%-40s %12.0f ns/op", name, r.NsPerOp)
		for _, unit := range sortedKeys(r.Metrics) {
			fmt.Printf("  %g %s", r.Metrics[unit], unit)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s section of %s (%d benchmarks)\n", *as, *out, len(results))
}

// runBenchmarks shells out to go test and parses its output.
func runBenchmarks(pkg, bench, benchtime string, count int) (map[string][]benchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outp, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return parseBenchOutput(string(outp))
}

// parseBenchOutput extracts benchmark lines of the form
//
//	BenchmarkName-8   800   1622107 ns/op   3697665 jobs/s
//
// keeping every run of each benchmark.
func parseBenchOutput(out string) (map[string][]benchResult, error) {
	results := map[string][]benchResult{}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix go test appends for parallel benchmarks.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], sc.Text())
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = val
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
		results[name] = append(results[name], r)
	}
	return results, sc.Err()
}

// median returns the run with the median ns/op (lower-middle for even
// counts), keeping that run's iteration count and metrics together.
func median(runs []benchResult) benchResult {
	sorted := append([]benchResult(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp < sorted[j].NsPerOp })
	return sorted[(len(sorted)-1)/2]
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// otherName names the section opposite to the one being written.
func otherName(as string) string {
	if as == "baseline" {
		return "current"
	}
	return "baseline"
}

// cpuModel reads the processor model from /proc/cpuinfo; empty when
// unavailable (non-Linux or restricted environments).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
