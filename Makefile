# The full verification gate: build, vet, the custom invariant
# analyzers (units, locks, determinism — see DESIGN.md §7), and the
# race-enabled test suite. CI runs exactly this via `make verify`.

GO ?= go

.PHONY: build test lint race verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

overprovlint: $(shell find cmd/overprovlint internal/analysis -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o overprovlint ./cmd/overprovlint

lint: overprovlint
	$(GO) vet ./...
	./overprovlint ./...

race:
	$(GO) test -race ./...

verify: build lint race

clean:
	rm -f overprovlint
