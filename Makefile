# The full verification gate: build, vet, the custom invariant
# analyzers (units, locks, determinism — see DESIGN.md §7), and the
# race-enabled test suite. CI runs exactly this via `make verify`.

GO ?= go

.PHONY: build test lint race chaos verify bench bench3 bench4 bench7 bench8 bench9 clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

overprovlint: $(shell find cmd/overprovlint internal/analysis -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o overprovlint ./cmd/overprovlint

# Standalone invariant gate: vet, the seven custom analyzers over the
# shipped sources, then the package-local analyzers over the test files
# too (-tests), so chaos/rotation tests obey the determinism and
# no-dropped-feedback rules. DESIGN.md §7 documents the analyzers.
lint: overprovlint
	$(GO) vet ./...
	./overprovlint ./...
	./overprovlint -tests -analyzers detrand,errfeedback ./...

# `race` also carries the analyzer self-checks: TestSuiteIsCleanOnModule
# and TestEveryAnalyzerHasExercisedFixtures (internal/analysis) fail
# verify if the suite reports anything on the tree or any analyzer's
# fixtures stop producing diagnostics.
race:
	$(GO) test -race ./...

# The fault-injection suite under the race detector: WAL crash matrix
# (a simulated SIGKILL at every filesystem operation), torn-tail and
# corruption recovery, graceful-degradation serving, drain deadlines,
# and loadgen retry behaviour. `make race` already includes these;
# this target runs only them, with -count=1 so chaos is never cached.
CHAOS_PKGS = ./internal/wal/... ./internal/faultinject/... ./internal/server ./internal/router ./internal/repl ./cmd/schedd ./cmd/loadgen
chaos:
	$(GO) test -race -count=1 \
		-run 'Crash|Torn|Chaos|Fault|Recover|Rotate|Halt|Degrade|Drain|Healthz|Retry|DiskFull|BitFlip|Wire|Group|Failover|Promot|Probe|Standby|Stalled|Membership|Replay' \
		$(CHAOS_PKGS)
	$(GO) test -run '^$$' -fuzz FuzzScanRecords -fuzztime 10s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzRouterSplitMerge -fuzztime 10s ./internal/router/

# Record the benchmark suite into the "current" section of BENCH_2.json:
# every figure bench once, then the throughput bench refined with the
# median of 3 × 2s runs (the same protocol the committed baseline used).
bench:
	$(GO) run ./cmd/benchjson -as current -out BENCH_2.json -bench . -benchtime 1x \
		-note "figure benches single 1x runs; SimulatorThroughput median of 3 x 2s runs"
	$(GO) run ./cmd/benchjson -as current -out BENCH_2.json -merge \
		-bench SimulatorThroughput -benchtime 2s -count 3 \
		-note "figure benches single 1x runs; SimulatorThroughput median of 3 x 2s runs"

# Record the concurrent-serving scaling curves (estimator striping and
# the daemon's single vs batch protocol at 1/2/4/8 goroutines) into the
# "current" section of BENCH_3.json; the committed baseline section was
# captured on the pre-sharding server and is never overwritten.
BENCH3_NOTE = median of 3 x 1s runs; GOMAXPROCS pinned per sub-benchmark; single-core container — see EXPERIMENTS.md
bench3:
	$(GO) run ./cmd/benchjson -as current -out BENCH_3.json \
		-pkg ./internal/estimate -bench ConcurrentEstimator -benchtime 1s -count 3 \
		-note "$(BENCH3_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_3.json -merge \
		-pkg ./internal/server -bench ServerSubmitComplete -benchtime 1s -count 3 \
		-note "$(BENCH3_NOTE)"

# Record the multicore serving matrix (BENCH_3's estimator + protocol
# curves plus the swp wire protocol) into the "current" section of
# BENCH_7.json. Run with GOMAXPROCS=8 (or on a machine with >= 4 cores)
# so the scaling curves measure parallelism; benchjson records
# gomaxprocs/num_cpu in the section and refuses to pair sections from
# differing core counts without -allow-cpu-mismatch.
BENCH7_NOTE = median of 3 x 1s runs; GOMAXPROCS pinned per sub-benchmark; see EXPERIMENTS.md §BENCH_7
bench7:
	$(GO) run ./cmd/benchjson -as current -out BENCH_7.json \
		-pkg ./internal/estimate -bench ConcurrentEstimator -benchtime 1s -count 3 \
		-note "$(BENCH7_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_7.json -merge \
		-pkg ./internal/server -bench ServerSubmitComplete -benchtime 1s -count 3 \
		-note "$(BENCH7_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_7.json -merge \
		-pkg ./internal/server -bench WireSubmitComplete -benchtime 1s -count 3 \
		-note "$(BENCH7_NOTE)"

# Record the durable-serving pair into BENCH_8.json: the baseline
# section is the per-completion-fsync path (wal=record, the only
# durability PR 5's daemon offered) and the current section is the
# group-commit pipeline (wal=group), both measured over a real journal
# on the test tempdir so every number pays actual fsyncs. Unlike the
# other BENCH files, both sections are recorded by this one target —
# the two modes coexist in the same tree and the comparison is the
# point of the pipeline.
BENCH8_NOTE = median of 3 x 1s runs; real fsync on tempdir; GOMAXPROCS pinned per sub-benchmark; see EXPERIMENTS.md §BENCH_8
bench8:
	$(GO) run ./cmd/benchjson -as baseline -out BENCH_8.json \
		-pkg ./internal/server -bench 'DurableSubmitComplete/wal=record' -benchtime 1s -count 3 \
		-note "$(BENCH8_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_8.json \
		-pkg ./internal/server -bench 'DurableSubmitComplete/wal=group' -benchtime 1s -count 3 \
		-note "$(BENCH8_NOTE)"

# Record the trace-pipeline benchmarks (SWF parser allocations, memoized
# workload reuse, sweep data-pipeline latency) into the "current" section
# of BENCH_4.json; the committed baseline section was captured on the
# pre-copy-on-write pipeline and is never overwritten.
BENCH4_NOTE = median of 3 x 1s runs; single-core container — see EXPERIMENTS.md
bench4:
	$(GO) run ./cmd/benchjson -as current -out BENCH_4.json \
		-pkg ./internal/trace -bench ReadSWF -benchtime 1s -count 3 \
		-note "$(BENCH4_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_4.json -merge \
		-pkg . -bench 'WorkloadCached|LoadSweepSmall' -benchtime 1s -count 3 \
		-note "$(BENCH4_NOTE)"

# Record the distributed-tier numbers into BENCH_9.json: the baseline
# section is mode=direct (clients straight at one schedd node, no
# router — the BENCH_8-era serving path) and the current section is
# mode=routed at backends ∈ {1, 2, 4}. The backends=1 row is the pure
# router-overhead delta (same single estimator, one extra hop); 2 and 4
# measure the scale-out. Loopback on one machine, so the numbers bound
# protocol + fan-out cost, not network or multi-host parallelism — see
# EXPERIMENTS.md §BENCH_9.
BENCH9_NOTE = median of 3 x 1s runs; 4 clients x 64-job batches over loopback swp; single machine — see EXPERIMENTS.md §BENCH_9
bench9:
	$(GO) run ./cmd/benchjson -as baseline -out BENCH_9.json \
		-pkg ./internal/router -bench 'RoutedSubmitComplete/mode=direct' -benchtime 1s -count 3 \
		-note "$(BENCH9_NOTE)"
	$(GO) run ./cmd/benchjson -as current -out BENCH_9.json \
		-pkg ./internal/router -bench 'RoutedSubmitComplete/mode=routed' -benchtime 1s -count 3 \
		-note "$(BENCH9_NOTE)"

verify: build lint race

clean:
	rm -f overprovlint
