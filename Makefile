# The full verification gate: build, vet, the custom invariant
# analyzers (units, locks, determinism — see DESIGN.md §7), and the
# race-enabled test suite. CI runs exactly this via `make verify`.

GO ?= go

.PHONY: build test lint race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

overprovlint: $(shell find cmd/overprovlint internal/analysis -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o overprovlint ./cmd/overprovlint

lint: overprovlint
	$(GO) vet ./...
	./overprovlint ./...

race:
	$(GO) test -race ./...

# Record the benchmark suite into the "current" section of BENCH_2.json:
# every figure bench once, then the throughput bench refined with the
# median of 3 × 2s runs (the same protocol the committed baseline used).
bench:
	$(GO) run ./cmd/benchjson -as current -out BENCH_2.json -bench . -benchtime 1x \
		-note "figure benches single 1x runs; SimulatorThroughput median of 3 x 2s runs"
	$(GO) run ./cmd/benchjson -as current -out BENCH_2.json -merge \
		-bench SimulatorThroughput -benchtime 2s -count 3 \
		-note "figure benches single 1x runs; SimulatorThroughput median of 3 x 2s runs"

verify: build lint race

clean:
	rm -f overprovlint
