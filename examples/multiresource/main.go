// Multi-resource estimation: the paper's §2.3 closing extension.
//
// Jobs request three resources — memory, scratch disk, and a software-
// package set (modelled as a capacity: the size of the prerequisite
// installation). Users over-provision all three. The coordinate-descent
// generalisation of Algorithm 1 reduces one resource per probe, so a
// failure always identifies the resource that caused it — the
// attribution problem the paper highlights for naive simultaneous
// reduction.
//
// The demo drives three job classes through the estimator and prints
// each class's estimate vector as it converges, then the total capacity
// reclaimed per resource.
//
// Run: go run ./examples/multiresource
package main

import (
	"fmt"
	"log"

	"overprov"
)

// jobClass is one similarity group of repeated submissions.
type jobClass struct {
	name      string
	requested []overprov.MemSize // memory MB, disk MB, package MB
	actual    []overprov.MemSize
}

func main() {
	resources := []string{"memory", "disk", "packages"}
	est, err := overprov.NewMultiResource(resources, 2, 0)
	if err != nil {
		log.Fatal(err)
	}

	classes := []jobClass{
		{
			name:      "genome-align",
			requested: []overprov.MemSize{32, 2048, 512},
			actual:    []overprov.MemSize{6, 300, 512}, // packages fully needed
		},
		{
			name:      "fluid-sim",
			requested: []overprov.MemSize{32, 1024, 256},
			actual:    []overprov.MemSize{28, 80, 0}, // asks for packages it never touches
		},
		{
			name:      "render-farm",
			requested: []overprov.MemSize{16, 4096, 128},
			actual:    []overprov.MemSize{4, 3900, 64},
		},
	}

	const cycles = 24
	fmt.Println("coordinate-descent estimation, α=2 β=0, implicit feedback")
	for _, c := range classes {
		fmt.Printf("\n%s: requested %v, actually uses %v\n", c.name, c.requested, c.actual)
		for i := 0; i < cycles; i++ {
			probe, err := est.Estimate(c.name, c.requested)
			if err != nil {
				log.Fatal(err)
			}
			success := true
			cause := ""
			for d := range probe {
				if !c.actual[d].Fits(probe[d]) {
					success = false
					cause = resources[d]
				}
			}
			if i < 8 || !success {
				status := "ok"
				if !success {
					status = "FAILED (" + cause + ")"
				}
				fmt.Printf("  cycle %2d: probe %-24s %s\n", i+1, fmt.Sprintf("%v", probe), status)
			}
			if err := est.Feedback(c.name, probe, success); err != nil {
				log.Fatal(err)
			}
			if est.Converged(c.name) {
				fmt.Printf("  converged after %d cycles\n", i+1)
				break
			}
		}
		final, _ := est.Current(c.name)
		fmt.Printf("  final estimate: %v\n", final)
		for d := range final {
			saved := c.requested[d].MBf() - final[d].MBf()
			if saved > 0 {
				fmt.Printf("    %-8s reclaimed %6.1f of %6.1f MB (%.0f%%)\n",
					resources[d], saved, c.requested[d].MBf(),
					100*saved/c.requested[d].MBf())
			}
		}
	}

	fmt.Println("\nEvery failure above names exactly one resource — the reason the paper")
	fmt.Println("prescribes one-coordinate-at-a-time probing for the multi-resource case.")
}
