// Daemon walkthrough: the estimation loop as a live scheduler service.
//
// This example embeds the scheduler daemon (the same core cmd/schedd
// serves), submits repeated jobs of one similarity class over its HTTP
// API, reports their completions, and prints how the matcher's estimate
// walks down from the requested 32 MB — Algorithm 1 learning in
// wall-clock time rather than simulation.
//
// Run: go run ./examples/daemon
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"overprov"
	"overprov/internal/server"
)

func main() {
	cl, err := overprov.CM5Cluster(24)
	if err != nil {
		log.Fatal(err)
	}
	est, err := overprov.NewSuccessiveApprox(2, 0, cl)
	if err != nil {
		log.Fatal(err)
	}
	core, err := server.New(server.Config{Cluster: cl, Estimator: est})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(core.Handler())
	defer ts.Close()
	fmt.Printf("scheduler daemon on %s — cluster %s\n\n", ts.URL, cl)

	// One job class: user 3, app 7, requests 32MB but really needs ~5MB
	// (so every capacity the walk tries suffices until it probes below
	// the 24MB pool... which this two-pool cluster never does — the
	// estimate settles on the 24MB pool exactly as in the paper's
	// evaluation cluster).
	fmt.Println("cycle  est(MB)  alloc(MB)  note")
	for i := 1; i <= 5; i++ {
		v := submit(ts.URL, server.SubmitRequest{
			User: 3, App: 7, Nodes: 32, ReqMemMB: 32, ReqTimeS: 600,
		})
		note := ""
		if v.AllocMB < 32 {
			note = "← matched to the smaller pool"
		}
		fmt.Printf("%5d  %7.0f  %9.0f  %s\n", i, v.EstMemMB, v.AllocMB, note)
		complete(ts.URL, v.ID, true)
	}

	var status server.StatusView
	getJSON(ts.URL+"/api/v1/status", &status)
	fmt.Printf("\ndaemon state: %d queued, %d running, estimator %s\n",
		status.Queued, status.Running, status.Estimator)

	resp, err := http.Get(ts.URL + "/api/v1/estimates")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Groups []struct {
			User       int     `json:"user"`
			App        int     `json:"app"`
			EstimateMB float64 `json:"estimate_mb"`
			LastGoodMB float64 `json:"last_good_mb"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		log.Fatal(err)
	}
	for _, g := range state.Groups {
		fmt.Printf("learned: user %d / app %d → estimate %.0fMB (last safe %.0fMB)\n",
			g.User, g.App, g.EstimateMB, g.LastGoodMB)
	}
	fmt.Println("\nthe learned state survives restarts: run cmd/schedd with -state groups.json")
}

func submit(base string, req server.SubmitRequest) server.JobView {
	var v server.JobView
	postJSON(base+"/api/v1/jobs", req, &v)
	return v
}

func complete(base string, id int64, success bool) {
	postJSON(fmt.Sprintf("%s/api/v1/jobs/%d/complete", base, id),
		server.CompleteRequest{Success: success}, nil)
}

func postJSON(url string, body, out interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func getJSON(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
