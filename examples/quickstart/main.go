// Quickstart: the smallest end-to-end use of the library.
//
// It generates a calibrated synthetic CM5-like workload, builds the
// paper's heterogeneous cluster (512 nodes × 32 MB + 512 nodes × 24 MB),
// and simulates the same trace twice — once matching jobs on the users'
// requested memory (classical matchmaking) and once matching on the
// successive-approximation estimate of what jobs actually need
// (Algorithm 1, α=2, β=0, implicit feedback). It then prints the
// utilization and slowdown improvement, the paper's headline result.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"overprov"
)

func main() {
	// A reduced trace keeps the demo under a second; swap in
	// overprov.DefaultTraceConfig() for the full 122,055-job workload.
	tr, err := overprov.GenerateTrace(overprov.SmallTraceConfig())
	if err != nil {
		log.Fatal(err)
	}
	// The paper removes the handful of full-machine jobs so the trace
	// can run on a cluster where only half the nodes keep 32 MB.
	tr = tr.DropLargerThan(512).CompleteOnly()
	tr.SortBySubmit()

	// Saturate the machine so the capacity freed by estimation matters.
	tr, err = tr.ScaleToOfferedLoad(1.0, 1024)
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		name string
		sum  overprov.Summary
	}
	var results []outcome
	for _, withEstimation := range []bool{false, true} {
		cl, err := overprov.CM5Cluster(24) // 512×32MB + 512×24MB
		if err != nil {
			log.Fatal(err)
		}
		est := overprov.NoEstimation()
		if withEstimation {
			if est, err = overprov.NewSuccessiveApprox(2, 0, cl); err != nil {
				log.Fatal(err)
			}
		}
		res, err := overprov.Simulate(overprov.SimConfig{
			Trace:     tr,
			Cluster:   cl,
			Estimator: est,
			Policy:    overprov.FCFS,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{est.Name(), overprov.Summarize(res)})
	}

	base, est := results[0].sum, results[1].sum
	fmt.Printf("cluster: 512×32MB + 512×24MB, FCFS, offered load 1.0\n\n")
	fmt.Printf("%-28s %12s %12s\n", "", "utilization", "slowdown")
	fmt.Printf("%-28s %12.3f %12.1f\n", results[0].name, base.Utilization, base.MeanSlowdown)
	fmt.Printf("%-28s %12.3f %12.1f\n", results[1].name, est.Utilization, est.MeanSlowdown)
	fmt.Printf("\nutilization gain: %+.1f%%   slowdown ratio: %.1f×\n",
		100*(est.Utilization/base.Utilization-1),
		base.MeanSlowdown/est.MeanSlowdown)
	fmt.Printf("jobs run with lowered estimates: %.1f%%   resource-failure rate: %.3f%%\n",
		100*est.LoweredJobFraction, 100*est.ResourceFailureRate)
}
