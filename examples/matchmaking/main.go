// Matchmaking: declarative resource matching (the Condor ClassAd model
// the paper builds on) combined with prerequisite-package estimation.
//
// Machines advertise memory and installed software packages; a job class
// declares both a memory request and a package prerequisite list. As
// submitted, the job matches only the one "fat" machine that has every
// declared package. The PackageSet estimator then probes which
// prerequisites the job actually exercises — the paper's example of a
// resource whose true requirement can be zero — and the shrinking
// requirement widens the set of machines the matchmaker accepts.
//
// Run: go run ./examples/matchmaking
package main

import (
	"fmt"
	"log"
	"strings"

	"overprov/internal/classad"
	"overprov/internal/estimate"
)

// machineSpec describes one advertised machine.
type machineSpec struct {
	name     string
	memory   int64
	packages []string
}

func main() {
	machines := []machineSpec{
		{"fat-node", 32, []string{"mpich", "blas", "fftw", "hdf", "matlab"}},
		{"mid-node-a", 32, []string{"mpich", "blas", "fftw"}},
		{"mid-node-b", 24, []string{"mpich", "blas", "fftw"}},
		{"lean-node-a", 24, []string{"mpich", "blas"}},
		{"lean-node-b", 16, []string{"mpich", "blas"}},
	}
	var ads []*classad.Ad
	for _, m := range machines {
		ad := classad.NewAd().
			Set("name", classad.Str(m.name)).
			Set("memory", classad.Int(m.memory)).
			Set("packages", classad.Set(m.packages...))
		ad.Requirements = classad.MustParse("other.reqmem <= memory")
		ads = append(ads, ad)
	}

	// The job class: requests 16MB and five prerequisite packages, but
	// in truth only exercises mpich and blas.
	requested := []string{"mpich", "blas", "fftw", "hdf", "matlab"}
	trulyNeeded := map[string]bool{"mpich": true, "blas": true}

	est, err := estimate.NewPackageSet(estimate.PackageSetConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("machines:")
	for _, m := range machines {
		fmt.Printf("  %-12s %2dMB  [%s]\n", m.name, m.memory, strings.Join(m.packages, " "))
	}
	fmt.Printf("\njob class: reqmem=16MB, declared prerequisites [%s]\n", strings.Join(requested, " "))
	fmt.Printf("ground truth: the job only uses [mpich blas]\n\n")

	for cycle := 1; cycle <= 8; cycle++ {
		needs := est.Estimate("sim-class", requested)

		job := classad.NewAd().
			Set("reqmem", classad.Int(16)).
			Set("needs", classad.Set(needs...))
		job.Requirements = classad.MustParse(
			"other.memory >= reqmem && other.packages contains needs")
		// Best fit: prefer the machine wasting the least memory.
		job.Rank = classad.MustParse("0 - other.memory")

		eligible := 0
		for _, ad := range ads {
			if classad.Match(job, ad) {
				eligible++
			}
		}
		best := classad.BestMatch(job, ads)
		bestName := "NO MATCH"
		if best >= 0 {
			bestName = machines[best].name
		}

		// Run the job: it succeeds iff the matched machine provides all
		// truly needed packages (which it does whenever the estimate
		// still covers the truth — a dropped-but-needed package fails).
		success := best >= 0
		for n := range trulyNeeded {
			covered := false
			for _, pkg := range needs {
				if pkg == n {
					covered = true
				}
			}
			if !covered {
				success = false
			}
		}
		fmt.Printf("cycle %d: require [%s] → %d/%d machines eligible, matched %-12s %s\n",
			cycle, strings.Join(needs, " "), eligible, len(machines), bestName,
			map[bool]string{true: "ok", false: "FAILED (missing package)"}[success])
		if err := est.Feedback("sim-class", success); err != nil {
			log.Fatal(err)
		}
		if est.Converged("sim-class") {
			fmt.Printf("\nconverged: confirmed prerequisites = %v\n", est.Needed("sim-class"))
			break
		}
	}

	// Final matching surface.
	needs := est.Estimate("sim-class", requested)
	job := classad.NewAd().
		Set("reqmem", classad.Int(16)).
		Set("needs", classad.Set(needs...))
	job.Requirements = classad.MustParse(
		"other.memory >= reqmem && other.packages contains needs")
	eligible := []string{}
	for i, ad := range ads {
		if classad.Match(job, ad) {
			eligible = append(eligible, machines[i].name)
		}
	}
	fmt.Printf("eligible machines after estimation: %s (was just fat-node)\n",
		strings.Join(eligible, ", "))
}
