// Heterogeneous-cluster walkthrough: the paper's §1.1 motivating
// scenario, then the estimator quadrant on a three-tier machine.
//
// Part 1 replays the M1/M2–J1/J2 blocking story: two machines with
// different memory, a job that over-requests, and a second job that gets
// blocked only because the first was matched by its inflated request.
// With estimation, the first job lands on the small machine and the
// second starts immediately.
//
// Part 2 runs the four Table 1 estimators on a 32/16/8 MB three-tier
// cluster, showing that the approach is not specific to the paper's
// two-tier evaluation machine.
//
// Run: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"overprov"
)

func main() {
	part1()
	part2()
}

// part1 is the paper's two-machine blocking scenario, simulated
// literally.
func part1() {
	fmt.Println("— Part 1: the §1.1 blocking scenario —")
	// M1 has 32MB, M2 has 16MB (one node each).
	// J1 requests 32MB but uses 8MB; J2 genuinely needs 32MB.
	mkTrace := func() *overprov.Trace {
		return &overprov.Trace{Jobs: []overprov.Job{
			{ID: 1, Submit: 0, Runtime: 1000, Nodes: 1, ReqTime: 2000,
				ReqMem: 32, UsedMem: 8, User: 1, App: 1},
			{ID: 2, Submit: 10, Runtime: 100, Nodes: 1, ReqTime: 200,
				ReqMem: 32, UsedMem: 30, User: 2, App: 2},
		}}
	}
	for _, withEstimation := range []bool{false, true} {
		cl, err := overprov.NewCluster(
			overprov.ClusterSpec{Nodes: 1, Mem: 32},
			overprov.ClusterSpec{Nodes: 1, Mem: 16},
		)
		if err != nil {
			log.Fatal(err)
		}
		est := overprov.NoEstimation()
		if withEstimation {
			// J1's similarity group has history: pre-train the estimator
			// with a short prefix of identical submissions (the paper's
			// "experience gathered with similar jobs previously
			// submitted"). Here we simulate that via the oracle bound
			// for brevity; quickstart shows the online learning path.
			est = overprov.Oracle()
		}
		res, err := overprov.Simulate(overprov.SimConfig{
			Trace: mkTrace(), Cluster: cl, Estimator: est, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		j2 := res.Records[1]
		fmt.Printf("  %-12s J2 waited %8s (started at t=%s)\n",
			est.Name()+":", (j2.Start - j2.Submit).String(), j2.Start.String())
	}
	fmt.Println()
}

// part2 compares the estimator quadrant on a three-tier cluster.
func part2() {
	fmt.Println("— Part 2: estimator quadrant on a 32/16/8MB cluster —")
	tr, err := overprov.GenerateTrace(overprov.SmallTraceConfig())
	if err != nil {
		log.Fatal(err)
	}
	tr = tr.DropLargerThan(384).CompleteOnly()
	tr.SortBySubmit()
	tr, err = tr.ScaleToOfferedLoad(1.0, 768)
	if err != nil {
		log.Fatal(err)
	}

	mkCluster := func() *overprov.Cluster {
		cl, err := overprov.NewCluster(
			overprov.ClusterSpec{Nodes: 256, Mem: 32},
			overprov.ClusterSpec{Nodes: 256, Mem: 16},
			overprov.ClusterSpec{Nodes: 256, Mem: 8},
		)
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}

	type entry struct {
		build    func(cl *overprov.Cluster) (overprov.Estimator, error)
		explicit bool
	}
	entries := []entry{
		{func(*overprov.Cluster) (overprov.Estimator, error) { return overprov.NoEstimation(), nil }, false},
		{func(cl *overprov.Cluster) (overprov.Estimator, error) { return overprov.NewSuccessiveApprox(2, 0, cl) }, false},
		{func(cl *overprov.Cluster) (overprov.Estimator, error) { return overprov.NewLastInstance(0, cl) }, true},
		{func(cl *overprov.Cluster) (overprov.Estimator, error) { return overprov.NewReinforcement(7, cl) }, false},
		{func(cl *overprov.Cluster) (overprov.Estimator, error) { return overprov.NewRegression(0.1, cl) }, true},
	}
	fmt.Printf("  %-32s %12s %10s %10s\n", "estimator", "utilization", "slowdown", "lowered")
	for _, e := range entries {
		cl := mkCluster()
		est, err := e.build(cl)
		if err != nil {
			log.Fatal(err)
		}
		res, err := overprov.Simulate(overprov.SimConfig{
			Trace: tr, Cluster: cl, Estimator: est,
			ExplicitFeedback: e.explicit, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := overprov.Summarize(res)
		fmt.Printf("  %-32s %12.3f %10.1f %9.1f%%\n",
			est.Name(), sum.Utilization, sum.MeanSlowdown, 100*sum.LoweredJobFraction)
	}
}
