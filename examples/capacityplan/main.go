// Capacity planning: the paper's §3.2 closing observation turned into a
// tool. "Given the distribution of requested and actual resource
// capacities, possibly derived from a scheduler log, and a resource
// estimation algorithm, it is possible to design a cluster ... so as to
// increase the cluster utilization."
//
// This example sweeps candidate second-pool memory sizes (the Figure 8
// experiment), ranks them by the utilization they deliver *under
// estimation*, and prints the recommended configuration together with
// the helped-job node counts that explain the ranking (the paper's
// R²=0.991 linear relationship).
//
// Run: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"
	"sort"

	"overprov"
	"overprov/internal/experiments"
)

func main() {
	s := experiments.SmallScale()
	// A denser candidate grid than the test default.
	s.SecondPoolMems = nil
	for m := 4; m <= 32; m += 2 {
		s.SecondPoolMems = append(s.SecondPoolMems, overprov.MemSize(m))
	}

	fmt.Println("evaluating candidate clusters: 512×32MB + 512×<candidate> at load 1.0 …")
	r, err := experiments.Figure8(s)
	if err != nil {
		log.Fatal(err)
	}

	// Memory is the budget: rank candidates by delivered utilization per
	// gigabyte of installed RAM. (Ranking by raw utilization would
	// trivially pick the all-32MB machine — the design question only
	// exists under a cost constraint.)
	costGB := func(row experiments.Figure8Row) float64 {
		return (512*32 + 512*row.SecondPoolMem.MBf()) / 1024
	}
	score := func(row experiments.Figure8Row) float64 {
		return row.EstimatedUtil / costGB(row)
	}
	rows := append([]experiments.Figure8Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return score(rows[i]) > score(rows[j]) })

	fmt.Printf("\n%-10s %12s %12s %8s %13s %10s %12s\n",
		"2nd pool", "util(no est)", "util(est)", "ratio", "helped nodes", "RAM (GB)", "util per GB")
	for i, row := range rows {
		marker := "  "
		if i == 0 {
			marker = "← best value"
		}
		fmt.Printf("%-10s %12.3f %12.3f %8.2f %13d %10.1f %12.4f %s\n",
			row.SecondPoolMem, row.BaselineUtil, row.EstimatedUtil,
			row.Ratio, row.HelpedNodes, costGB(row), score(row), marker)
	}

	best := rows[0]
	fmt.Printf("\nrecommendation: pair the 512×32MB nodes with 512×%v nodes.\n", best.SecondPoolMem)
	fmt.Printf("under estimation this cluster sustains %.1f%% utilization (%.2f× the no-estimation figure)\n",
		100*best.EstimatedUtil, best.Ratio)
	fmt.Printf("at %.1f GB of installed memory — the best utilization per gigabyte in the sweep,\n",
		costGB(best))
	fmt.Println("because the α=2 capacity walk can actually land jobs on the second pool —")
	fmt.Println("pools below half the typical request are unreachable (the paper's §3.2")
	fmt.Println("second condition), so cheap small-memory pools deliver no extra throughput.")
	if r.HelpedFitOK {
		fmt.Printf("linear fit of utilization ratio to helped-job node count: R² = %.3f (paper: 0.991)\n",
			r.HelpedFit.R2)
	}
}
