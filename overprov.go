// Package overprov reproduces Yom-Tov & Aridor, "Improving Resource
// Matching Through Estimation of Actual Job Requirements" (IBM Research
// Report / HPDC 2006): machine-learning estimation of the resources jobs
// actually use, so heterogeneous-cluster schedulers can match jobs to
// machines with less capacity than users request.
//
// The package is a façade over the implementation packages:
//
//	internal/trace      workload model + Standard Workload Format I/O
//	internal/synth      calibrated synthetic LANL-CM5-like generator
//	internal/similarity similarity groups (paper §2.2)
//	internal/estimate   the estimators (Algorithm 1 and the Table 1 quadrant)
//	internal/cluster    heterogeneous machine pools
//	internal/sched      FCFS / EASY + conservative backfilling / SJF
//	internal/sim        the discrete-event scheduler↔estimator loop
//	internal/metrics    utilization, slowdown, saturation
//	internal/classad    declarative matchmaking (requirements language)
//	internal/server     the loop as a deployable HTTP scheduler daemon
//	internal/experiments one entry point per paper table/figure
//
// A minimal end-to-end run (see example_test.go for runnable versions):
//
//	tr, _ := overprov.GenerateTrace(overprov.SmallTraceConfig())
//	cl, _ := overprov.CM5Cluster(24) // 512×32MB + 512×24MB
//	est, _ := overprov.NewSuccessiveApprox(2, 0, cl)
//	res, _ := overprov.Simulate(overprov.SimConfig{Trace: tr, Cluster: cl, Estimator: est})
//	fmt.Println(overprov.Summarize(res).Utilization)
//
// The paper-reproduction experiments (one per table/figure, plus
// ablations and extensions) live in internal/experiments and are driven
// by the cmd/ tools and the root benchmarks in bench_test.go.
package overprov

import (
	"io"

	"overprov/internal/cluster"
	"overprov/internal/estimate"
	"overprov/internal/experiments"
	"overprov/internal/metrics"
	"overprov/internal/sched"
	"overprov/internal/sim"
	"overprov/internal/similarity"
	"overprov/internal/synth"
	"overprov/internal/trace"
	"overprov/internal/units"
)

// Re-exported core types. The aliases keep one set of identities across
// the façade and the implementation packages.
type (
	// Trace is an ordered workload of jobs (see Job).
	Trace = trace.Trace
	// Job is one workload record with requested and actual memory.
	Job = trace.Job
	// MemSize is a memory quantity in megabytes.
	MemSize = units.MemSize
	// Seconds is a simulated time span.
	Seconds = units.Seconds
	// Cluster is a heterogeneous pool of nodes.
	Cluster = cluster.Cluster
	// ClusterSpec describes one capacity pool when building a cluster.
	ClusterSpec = cluster.Spec
	// Estimator predicts actual job requirements and learns from
	// feedback.
	Estimator = estimate.Estimator
	// Outcome is the feedback given to an estimator after a job ends.
	Outcome = estimate.Outcome
	// Policy is a scheduling discipline.
	Policy = sched.Policy
	// SimConfig configures one simulation run.
	SimConfig = sim.Config
	// SimResult is a finished run's audit trail.
	SimResult = sim.Result
	// Summary condenses a run into the paper's metrics.
	Summary = metrics.Summary
	// TraceConfig drives the synthetic workload generator.
	TraceConfig = synth.Config
	// Scale sizes the paper-reproduction experiments.
	Scale = experiments.Scale
	// SimilarityKey identifies a similarity group.
	SimilarityKey = similarity.Key
)

// Scheduling policies (the paper simulates FCFS; the others are its
// stated future work).
var (
	// FCFS is strict first-come first-served.
	FCFS Policy = sched.FCFS{}
	// EASYBackfill is EASY backfilling with a head reservation.
	EASYBackfill Policy = sched.EASY{}
	// ConservativeBackfill reserves every queued job in arrival order.
	ConservativeBackfill Policy = sched.Conservative{}
	// SJF is shortest-job-first by the user's runtime estimate.
	SJF Policy = sched.SJF{}
)

// Journal captures a run's full event stream when assigned to
// SimConfig.Journal: arrivals, dispatches, completions, failures, and
// rejections, with lifecycle validation and occupancy reconstruction.
type Journal = sim.Journal

// Distribution summarises a per-job metric with percentiles.
type Distribution = metrics.Distribution

// WaitDistribution returns the queueing-delay distribution of a run.
func WaitDistribution(r *SimResult) Distribution { return metrics.WaitDistribution(r) }

// SlowdownDistribution returns the per-job slowdown distribution of a
// run.
func SlowdownDistribution(r *SimResult) Distribution { return metrics.SlowdownDistribution(r) }

// DefaultTraceConfig returns the full-scale CM5 calibration
// (122,055 jobs over two simulated years).
func DefaultTraceConfig() TraceConfig { return synth.DefaultConfig() }

// SmallTraceConfig returns a few-thousand-job trace with the same
// calibrated shape, suitable for tests and demos.
func SmallTraceConfig() TraceConfig { return synth.SmallConfig() }

// GenerateTrace produces a calibrated synthetic LANL-CM5-like trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return synth.Generate(cfg) }

// ReadSWF parses a Standard Workload Format stream — use it to replace
// the synthetic workload with a real archive trace.
func ReadSWF(r io.Reader) (*Trace, error) { return trace.ReadSWF(r) }

// WriteSWF serialises a trace in Standard Workload Format.
func WriteSWF(w io.Writer, t *Trace) error { return trace.WriteSWF(w, t) }

// NewCluster builds a heterogeneous cluster from capacity pools.
func NewCluster(specs ...ClusterSpec) (*Cluster, error) { return cluster.New(specs...) }

// CM5Cluster builds the paper's evaluation machine: 512 nodes with
// 32 MB plus 512 nodes with secondMem megabytes per node.
func CM5Cluster(secondMem MemSize) (*Cluster, error) {
	return cluster.CM5Heterogeneous(secondMem)
}

// NoEstimation returns the identity baseline estimator (classical
// matching on the user's request).
func NoEstimation() Estimator { return estimate.Identity{} }

// Oracle returns the perfect-knowledge estimator — the upper bound no
// learning algorithm can beat.
func Oracle() Estimator { return &estimate.Oracle{} }

// MultiResource generalises Algorithm 1 to several resources at once via
// coordinate descent (the paper's §2.3 multidimensional extension).
type MultiResource = estimate.MultiResource

// NewMultiResource builds the multi-resource estimator over the named
// resource dimensions with the paper's Algorithm 1 parameters.
func NewMultiResource(resources []string, alpha, beta float64) (*MultiResource, error) {
	return estimate.NewMultiResource(estimate.MultiResourceConfig{
		Resources: resources, Alpha: alpha, Beta: beta,
	})
}

// NewSuccessiveApprox builds the paper's Algorithm 1 with learning rate
// alpha (>1), damping beta (∈ [0,1)), and estimates rounded to cl's
// capacities. Pass alpha=2, beta=0 for the paper's setting; cl may be
// nil to skip rounding.
func NewSuccessiveApprox(alpha, beta float64, cl *Cluster) (Estimator, error) {
	cfg := estimate.SuccessiveApproxConfig{Alpha: alpha, Beta: beta}
	if cl != nil {
		cfg.Round = cl
	}
	return estimate.NewSuccessiveApprox(cfg)
}

// NewLastInstance builds the explicit-feedback similarity estimator:
// each group's next estimate is its previous submission's actual usage,
// inflated by margin.
func NewLastInstance(margin float64, cl *Cluster) (Estimator, error) {
	cfg := estimate.LastInstanceConfig{Margin: margin}
	if cl != nil {
		cfg.Round = cl
	}
	return estimate.NewLastInstance(cfg)
}

// NewReinforcement builds the implicit-feedback global-policy estimator
// (an ε-greedy bandit over request-reduction factors).
func NewReinforcement(seed uint64, cl *Cluster) (Estimator, error) {
	cfg := estimate.ReinforcementConfig{Seed: seed}
	if cl != nil {
		cfg.Round = cl
	}
	return estimate.NewReinforcement(cfg)
}

// NewRegression builds the explicit-feedback regression estimator with
// the given safety margin.
func NewRegression(margin float64, cl *Cluster) (Estimator, error) {
	cfg := estimate.RegressionConfig{Margin: margin}
	if cl != nil {
		cfg.Round = cl
	}
	return estimate.NewRegression(cfg)
}

// Simulate runs one trace-driven simulation to completion.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// Summarize condenses a run into utilization, slowdown, and the paper's
// conservatism statistics.
func Summarize(r *SimResult) Summary { return metrics.Summarize(r) }

// FullScale sizes the figure/table reproductions at the paper's
// dimensions (122,055 jobs).
func FullScale() Scale { return experiments.FullScale() }

// SmallScale sizes the reproductions at test scale with the same
// calibrated shape.
func SmallScale() Scale { return experiments.SmallScale() }
