package overprov

// Integration tests of the public façade: the full generate → cluster →
// estimate → simulate → summarise pipeline, exercised the way README
// tells users to.

import (
	"bytes"
	"strings"
	"testing"
)

func smallWorkload(t *testing.T) *Trace {
	t.Helper()
	tr, err := GenerateTrace(SmallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.DropLargerThan(512).CompleteOnly()
	tr.SortBySubmit()
	tr, err = tr.ScaleToOfferedLoad(1.0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestQuickstartPipeline(t *testing.T) {
	tr := smallWorkload(t)

	runWith := func(build func(cl *Cluster) (Estimator, error), explicit bool) Summary {
		cl, err := CM5Cluster(24)
		if err != nil {
			t.Fatal(err)
		}
		est, err := build(cl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(SimConfig{
			Trace: tr, Cluster: cl, Estimator: est,
			ExplicitFeedback: explicit, Policy: FCFS, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res)
	}

	base := runWith(func(*Cluster) (Estimator, error) { return NoEstimation(), nil }, false)
	est := runWith(func(cl *Cluster) (Estimator, error) { return NewSuccessiveApprox(2, 0, cl) }, false)

	if est.Utilization <= base.Utilization*1.2 {
		t.Errorf("estimation utilization %.3f should clearly beat baseline %.3f",
			est.Utilization, base.Utilization)
	}
	if est.MeanSlowdown >= base.MeanSlowdown {
		t.Errorf("estimation slowdown %.1f should beat baseline %.1f",
			est.MeanSlowdown, base.MeanSlowdown)
	}
	if est.LoweredJobFraction < 0.1 {
		t.Errorf("lowered fraction %.3f: estimation barely engaged", est.LoweredJobFraction)
	}
}

func TestAllFacadeEstimatorsRun(t *testing.T) {
	tr := smallWorkload(t).Head(800)
	builders := []struct {
		name     string
		build    func(cl *Cluster) (Estimator, error)
		explicit bool
	}{
		{"identity", func(*Cluster) (Estimator, error) { return NoEstimation(), nil }, false},
		{"oracle", func(*Cluster) (Estimator, error) { return Oracle(), nil }, false},
		{"successive", func(cl *Cluster) (Estimator, error) { return NewSuccessiveApprox(2, 0, cl) }, false},
		{"lastinstance", func(cl *Cluster) (Estimator, error) { return NewLastInstance(0.1, cl) }, true},
		{"reinforcement", func(cl *Cluster) (Estimator, error) { return NewReinforcement(3, cl) }, false},
		{"regression", func(cl *Cluster) (Estimator, error) { return NewRegression(0.1, cl) }, true},
	}
	for _, b := range builders {
		cl, err := CM5Cluster(24)
		if err != nil {
			t.Fatal(err)
		}
		est, err := b.build(cl)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		res, err := Simulate(SimConfig{
			Trace: tr, Cluster: cl, Estimator: est,
			ExplicitFeedback: b.explicit, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		sum := Summarize(res)
		if sum.Completed == 0 {
			t.Errorf("%s completed no jobs", b.name)
		}
		if sum.Completed+sum.Rejected != tr.Len() {
			t.Errorf("%s: %d completed + %d rejected != %d jobs",
				b.name, sum.Completed, sum.Rejected, tr.Len())
		}
	}
}

func TestFacadeEstimatorsWithoutRounding(t *testing.T) {
	// Every constructor must accept a nil cluster (no rounding).
	for _, build := range []func() (Estimator, error){
		func() (Estimator, error) { return NewSuccessiveApprox(2, 0, nil) },
		func() (Estimator, error) { return NewLastInstance(0, nil) },
		func() (Estimator, error) { return NewReinforcement(1, nil) },
		func() (Estimator, error) { return NewRegression(0, nil) },
	} {
		if _, err := build(); err != nil {
			t.Errorf("nil-cluster constructor failed: %v", err)
		}
	}
}

func TestSWFRoundTripThroughFacade(t *testing.T) {
	tr, err := GenerateTrace(SmallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost jobs: %d vs %d", back.Len(), tr.Len())
	}
	if back.MaxNodes != tr.MaxNodes {
		t.Errorf("MaxNodes lost: %d vs %d", back.MaxNodes, tr.MaxNodes)
	}
}

func TestPoliciesExported(t *testing.T) {
	for _, p := range []Policy{FCFS, EASYBackfill, SJF} {
		if p.Name() == "" {
			t.Error("exported policy with empty name")
		}
	}
	if FCFS.Name() != "fcfs" {
		t.Errorf("FCFS.Name() = %q", FCFS.Name())
	}
}

func TestScalesExported(t *testing.T) {
	full, small := FullScale(), SmallScale()
	if full.TraceCfg.Jobs != 122055 {
		t.Errorf("full scale jobs = %d, want the paper's 122,055", full.TraceCfg.Jobs)
	}
	if small.TraceCfg.Jobs >= full.TraceCfg.Jobs {
		t.Error("small scale should be smaller than full scale")
	}
	if len(full.SecondPoolMems) != 32 {
		t.Errorf("full Figure 8 sweep has %d points, want 32 (1–32 MB)", len(full.SecondPoolMems))
	}
}

func TestMultiResourceFacade(t *testing.T) {
	mr, err := NewMultiResource([]string{"memory", "disk"}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := []MemSize{32, 100}
	probe, err := mr.Estimate("class-a", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe) != 2 || !probe[0].Eq(32) {
		t.Errorf("first probe = %v, want the request", probe)
	}
	if err := mr.Feedback("class-a", probe, true); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorNamesDistinct(t *testing.T) {
	cl, err := CM5Cluster(24)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, build := range []func() (Estimator, error){
		func() (Estimator, error) { return NoEstimation(), nil },
		func() (Estimator, error) { return Oracle(), nil },
		func() (Estimator, error) { return NewSuccessiveApprox(2, 0, cl) },
		func() (Estimator, error) { return NewLastInstance(0, cl) },
		func() (Estimator, error) { return NewReinforcement(1, cl) },
		func() (Estimator, error) { return NewRegression(0, cl) },
	} {
		e, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if names[e.Name()] {
			t.Errorf("duplicate estimator name %q", e.Name())
		}
		names[e.Name()] = true
	}
}

func TestGeneratedTraceMatchesPaperHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation skipped in -short mode")
	}
	tr, err := GenerateTrace(DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 122055 {
		t.Errorf("jobs = %d, want 122,055", tr.Len())
	}
	kept := tr.DropLargerThan(512)
	if removed := tr.Len() - kept.Len(); removed != 6 {
		t.Errorf("full-machine jobs = %d, want the paper's 6", removed)
	}
	if !strings.Contains(strings.Join(tr.Header, "\n"), "MaxNodes: 1024") {
		t.Error("SWF header missing MaxNodes")
	}
}

func TestFacadeJournalAndDistributions(t *testing.T) {
	tr := smallWorkload(t).Head(500)
	cl, err := CM5Cluster(24)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewSuccessiveApprox(2, 0, cl)
	if err != nil {
		t.Fatal(err)
	}
	j := &Journal{}
	res, err := Simulate(SimConfig{Trace: tr, Cluster: cl, Estimator: est, Journal: j, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() == 0 {
		t.Fatal("journal empty")
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	w := WaitDistribution(res)
	s := SlowdownDistribution(res)
	if w.N == 0 || s.N == 0 {
		t.Fatalf("empty distributions: wait %+v slowdown %+v", w, s)
	}
	if s.P99 < s.P50 || w.Max < w.P90 {
		t.Errorf("distribution ordering broken: wait %+v slowdown %+v", w, s)
	}
}

func TestFacadeConservativePolicy(t *testing.T) {
	tr := smallWorkload(t).Head(300)
	cl, err := CM5Cluster(24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Trace: tr, Cluster: cl, Estimator: NoEstimation(),
		Policy: ConservativeBackfill, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != tr.Len() {
		t.Errorf("conservation broken: %d+%d != %d", res.Completed, res.Rejected, tr.Len())
	}
}
