package overprov_test

// Executable documentation: each Example is verified by `go test` and
// rendered by godoc, so the snippets in README stay honest.

import (
	"fmt"
	"log"

	"overprov"
)

// ExampleNewSuccessiveApprox walks the paper's Figure 7 scenario by
// hand: a similarity group requesting 32 MB while using ~5 MB, on a
// machine ladder of {32, 24, 16, 8, 4} MB. The estimate halves per
// success, overshoots once at 4 MB, and settles at 8 MB — a four-fold
// saving.
func ExampleNewSuccessiveApprox() {
	cl, err := overprov.NewCluster(
		overprov.ClusterSpec{Nodes: 8, Mem: 32},
		overprov.ClusterSpec{Nodes: 8, Mem: 24},
		overprov.ClusterSpec{Nodes: 8, Mem: 16},
		overprov.ClusterSpec{Nodes: 8, Mem: 8},
		overprov.ClusterSpec{Nodes: 8, Mem: 4},
	)
	if err != nil {
		log.Fatal(err)
	}
	est, err := overprov.NewSuccessiveApprox(2, 0, cl)
	if err != nil {
		log.Fatal(err)
	}
	job := overprov.Job{
		ID: 1, Nodes: 4, Runtime: 100, ReqTime: 200,
		ReqMem: 32, UsedMem: 5.2, User: 1, App: 1,
	}
	for cycle := 1; cycle <= 6; cycle++ {
		e := est.Estimate(&job)
		success := job.UsedMem.Fits(e)
		fmt.Printf("cycle %d: %v success=%t\n", cycle, e, success)
		est.Feedback(overprov.Outcome{Job: &job, Allocated: e, Success: success})
	}
	// Output:
	// cycle 1: 32MB success=true
	// cycle 2: 16MB success=true
	// cycle 3: 8MB success=true
	// cycle 4: 4MB success=false
	// cycle 5: 8MB success=true
	// cycle 6: 8MB success=true
}

// ExampleSimulate runs the paper's two-machine blocking scenario (§1.1):
// without estimation, J2 waits for the over-provisioned J1 to release
// the big machine; with perfect knowledge J2 starts immediately.
func ExampleSimulate() {
	mkTrace := func() *overprov.Trace {
		return &overprov.Trace{Jobs: []overprov.Job{
			{ID: 1, Submit: 0, Runtime: 1000, Nodes: 1, ReqTime: 2000,
				ReqMem: 32, UsedMem: 8, User: 1, App: 1},
			{ID: 2, Submit: 10, Runtime: 100, Nodes: 1, ReqTime: 200,
				ReqMem: 32, UsedMem: 30, User: 2, App: 2},
		}}
	}
	for _, estimator := range []overprov.Estimator{overprov.NoEstimation(), overprov.Oracle()} {
		cl, err := overprov.NewCluster(
			overprov.ClusterSpec{Nodes: 1, Mem: 32},
			overprov.ClusterSpec{Nodes: 1, Mem: 16},
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := overprov.Simulate(overprov.SimConfig{
			Trace: mkTrace(), Cluster: cl, Estimator: estimator, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		j2 := res.Records[1]
		fmt.Printf("%s: J2 waited %.0fs\n", estimator.Name(), (j2.Start - j2.Submit).Sec())
	}
	// Output:
	// identity: J2 waited 990s
	// oracle: J2 waited 0s
}

// ExampleNewMultiResource reduces memory and disk for one job class via
// coordinate descent — one resource per probe, so failures stay
// attributable (§2.3).
func ExampleNewMultiResource() {
	mr, err := overprov.NewMultiResource([]string{"memory", "disk"}, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	requested := []overprov.MemSize{32, 128}
	actual := []overprov.MemSize{5, 20}
	for i := 0; i < 60 && !mr.Converged("class"); i++ {
		probe, err := mr.Estimate("class", requested)
		if err != nil {
			log.Fatal(err)
		}
		ok := actual[0].Fits(probe[0]) && actual[1].Fits(probe[1])
		if err := mr.Feedback("class", probe, ok); err != nil {
			log.Fatal(err)
		}
	}
	final, _ := mr.Current("class")
	fmt.Printf("converged to %v\n", final)
	// Output:
	// converged to [8MB 32MB]
}
