package overprov

// One benchmark per table and figure of the paper. Each bench runs the
// corresponding experiment end to end on the reduced (SmallScale) trace
// and reports the figure's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every artifact's shape in one
// command. The full-scale versions live behind the cmd/ tools
// (cmd/swfstat, cmd/sweep, cmd/estcompare, cmd/simulate).

import (
	"testing"

	"overprov/internal/experiments"
)

// benchTrace caches the generated workloads across benchmark iterations.
var benchState struct {
	scale    experiments.Scale
	prepared bool
}

func benchScale() experiments.Scale {
	if !benchState.prepared {
		benchState.scale = experiments.SmallScale()
		benchState.prepared = true
	}
	return benchState.scale
}

// BenchmarkFigure1_OverprovisioningHistogram regenerates the Figure 1
// histogram of requested/used memory ratios with its log-count fit.
// Reported metrics: the fraction of jobs with ratio ≥ 2 (paper: 0.328)
// and the fit's R² (paper: 0.69).
func BenchmarkFigure1_OverprovisioningHistogram(b *testing.B) {
	s := benchScale()
	tr, err := experiments.RawWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var frac, r2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(tr)
		if err != nil {
			b.Fatal(err)
		}
		frac, r2 = r.FractionAtLeast2, r.Fit.R2
	}
	b.ReportMetric(frac, "ratio≥2-frac")
	b.ReportMetric(r2, "fit-R²")
}

// BenchmarkFigure3_GroupSizeDistribution regenerates the similarity
// group-size distribution. Reported metrics: the share of groups with
// ≥ 10 jobs (paper: 0.194) and the share of jobs they hold (paper: 0.83).
func BenchmarkFigure3_GroupSizeDistribution(b *testing.B) {
	s := benchScale()
	tr, err := experiments.RawWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gs, js float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(tr)
		gs, js = r.GroupShareAtLeast10, r.JobShareAtLeast10
	}
	b.ReportMetric(gs, "group-share≥10")
	b.ReportMetric(js, "job-share≥10")
}

// BenchmarkFigure4_GainVsSimilarity regenerates the per-group potential
// gain versus similarity-range scatter. Reported metric: the fraction of
// plotted groups with a tight (< 1.5×) range.
func BenchmarkFigure4_GainVsSimilarity(b *testing.B) {
	s := benchScale()
	tr, err := experiments.RawWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tight float64
	var points int
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(tr, 10)
		tight, points = r.TightShare, len(r.Points)
	}
	b.ReportMetric(tight, "tight-share")
	b.ReportMetric(float64(points), "groups")
}

// BenchmarkFigure5_UtilizationCurve regenerates the utilization-vs-load
// sweep with and without estimation. Reported metric: the utilization
// gain at saturation (paper: +58 %, reported as 0.58).
func BenchmarkFigure5_UtilizationCurve(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.LoadSweep(s)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.SaturationGain()
	}
	b.ReportMetric(gain, "saturation-gain")
}

// BenchmarkFigure6_SlowdownRatio regenerates the slowdown-ratio curve.
// Reported metric: the peak slowdown ratio across the load sweep (the
// paper's dramatic improvement around 60 % load).
func BenchmarkFigure6_SlowdownRatio(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.LoadSweep(s)
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, ratio := range r.SlowdownRatios() {
			if ratio > peak {
				peak = ratio
			}
		}
	}
	b.ReportMetric(peak, "peak-slowdown-ratio")
}

// BenchmarkFigure7_EstimateTrajectory regenerates the single-group
// estimate walk (32 → 16 → 8 → 4✗ → 8). Reported metric: the final
// memory reduction factor (paper: 4×).
func BenchmarkFigure7_EstimateTrajectory(b *testing.B) {
	b.ResetTimer()
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(experiments.Figure7Config{})
		if err != nil {
			b.Fatal(err)
		}
		reduction = r.ReductionFactor
	}
	b.ReportMetric(reduction, "mem-reduction")
}

// BenchmarkFigure8_ClusterSweep regenerates the second-pool memory sweep.
// Reported metrics: the best utilization ratio in the sweep and the R²
// of the helped-nodes linear fit (paper: 0.991).
func BenchmarkFigure8_ClusterSweep(b *testing.B) {
	s := benchScale()
	tr, err := experiments.Workload(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bestRatio, fitR2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8On(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		best, err := r.BestSecondPool()
		if err != nil {
			b.Fatal(err)
		}
		bestRatio = best.Ratio
		if r.HelpedFitOK {
			fitR2 = r.HelpedFit.R2
		}
	}
	b.ReportMetric(bestRatio, "best-util-ratio")
	b.ReportMetric(fitR2, "helped-fit-R²")
}

// BenchmarkTable1_EstimatorQuadrant regenerates the algorithm-quadrant
// comparison. Reported metric: successive approximation's utilization
// advantage over the no-estimation baseline.
func BenchmarkTable1_EstimatorQuadrant(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var advantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
		base, err := r.Lookup("none")
		if err != nil {
			b.Fatal(err)
		}
		sa, err := r.Lookup("successive")
		if err != nil {
			b.Fatal(err)
		}
		advantage = sa.Summary.Utilization / base.Summary.Utilization
	}
	b.ReportMetric(advantage, "sa-vs-baseline")
}

// BenchmarkConservatism regenerates the §3.2 conservatism statistics
// from the Figure 8 sweep. Reported metrics: worst resource-failure rate
// and the maximum fraction of jobs run with lowered estimates (paper:
// ≤ 0.0001 and 0.15–0.40; see EXPERIMENTS.md on the failure-rate gap).
func BenchmarkConservatism(b *testing.B) {
	s := benchScale()
	tr, err := experiments.Workload(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var failRate, lowered float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8On(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Conservatism()
		failRate, lowered = c.MaxResourceFailureRate, c.MaxLoweredFraction
	}
	b.ReportMetric(failRate, "max-fail-rate")
	b.ReportMetric(lowered, "max-lowered-frac")
}

// BenchmarkAblation_AlphaBeta regenerates the §2.3 learning-parameter
// sweep. Reported metric: the utilization spread between the best and
// worst (α, β) setting — how much the parameters matter.
func BenchmarkAblation_AlphaBeta(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AlphaBetaSweep(s, []float64{1.2, 2, 10}, []float64{0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := rows[0].Summary.Utilization, rows[0].Summary.Utilization
		for _, r := range rows[1:] {
			if r.Summary.Utilization < lo {
				lo = r.Summary.Utilization
			}
			if r.Summary.Utilization > hi {
				hi = r.Summary.Utilization
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "util-spread")
}

// BenchmarkAblation_Policies reruns the fixed-load experiment under
// FCFS, EASY backfilling, and SJF (the paper's future work). Reported
// metric: the minimum estimation gain across policies — the paper's
// conjecture that gains correlate across schedulers.
func BenchmarkAblation_Policies(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var minGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PolicyComparison(s)
		if err != nil {
			b.Fatal(err)
		}
		minGain = 0
		for k, r := range rows {
			g := 0.0
			if r.Baseline.Utilization > 0 {
				g = r.Estimated.Utilization / r.Baseline.Utilization
			}
			if k == 0 || g < minGain {
				minGain = g
			}
		}
	}
	b.ReportMetric(minGain, "min-policy-gain")
}

// BenchmarkExtension_WarmStart regenerates the §2.2 offline-training
// comparison. Reported metric: successive approximation's lowered-job
// fraction gain from pretraining.
func BenchmarkExtension_WarmStart(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var delta float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WarmStart(s, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		delta = rows[0].Warm.LoweredJobFraction - rows[0].Cold.LoweredJobFraction
	}
	b.ReportMetric(delta, "lowered-gain")
}

// BenchmarkExtension_OnlineSimilarity regenerates the §4 online
// similarity-identification comparison. Reported metric: the
// hierarchical estimator's utilization relative to the fixed key.
func BenchmarkExtension_OnlineSimilarity(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OnlineSimilarity(s)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Summary.Utilization > 0 {
			rel = rows[1].Summary.Utilization / rows[0].Summary.Utilization
		}
	}
	b.ReportMetric(rel, "hier-vs-fixed")
}

// BenchmarkExtension_Convergence regenerates the §2.1
// group-size-vs-precision analysis. Reported metric: the correlation
// between log group size and estimation precision (positive confirms
// "the larger the group, the closer the approximation").
func BenchmarkExtension_Convergence(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var corr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Convergence(s)
		if err != nil {
			b.Fatal(err)
		}
		corr = r.Correlation
	}
	b.ReportMetric(corr, "size-precision-corr")
}

// BenchmarkExtension_RuntimePrediction regenerates the 2×2 grid of
// runtime-prediction × memory-estimation under EASY backfilling.
// Reported metric: the utilization of the best cell (memory estimation
// with user runtime estimates, per EXPERIMENTS.md).
func BenchmarkExtension_RuntimePrediction(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RuntimePrediction(s)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range rows {
			if r.Summary.Utilization > best {
				best = r.Summary.Utilization
			}
		}
	}
	b.ReportMetric(best, "best-cell-util")
}

// BenchmarkWorkloadCached measures acquiring the simulation-ready
// workload for a Scale — the call every figure, ablation, and extension
// entry point opens with. Since the workload cache landed this is a
// content-keyed lookup handing out a shared read-only view; before, it
// regenerated the synthetic trace from scratch on every call.
func BenchmarkWorkloadCached(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Workload(s)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkLoadSweepSmall measures the data-pipeline side of one
// Figure 5/6 load sweep at SmallScale: acquiring the simulation-ready
// workload and preparing the scaled per-load-point trace for every load
// in the sweep — everything LoadSweepWithPolicy does around the
// simulations themselves (the engine is measured separately by
// BenchmarkSimulatorThroughput).
func BenchmarkLoadSweepSmall(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Workload(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, load := range s.Loads {
			scaled, err := tr.ScaleToOfferedLoad(load, 1024)
			if err != nil {
				b.Fatal(err)
			}
			if scaled.Len() != tr.Len() {
				b.Fatal("scaling changed job count")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures the raw discrete-event engine:
// jobs simulated per second on the paper's cluster with estimation on.
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := benchScale()
	tr, err := experiments.Workload(s)
	if err != nil {
		b.Fatal(err)
	}
	scaled, err := tr.ScaleToOfferedLoad(1.0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := CM5Cluster(24)
		if err != nil {
			b.Fatal(err)
		}
		est, err := NewSuccessiveApprox(2, 0, cl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(SimConfig{Trace: scaled, Cluster: cl, Estimator: est, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(scaled.Len()*b.N)/b.Elapsed().Seconds(), "jobs/s")
}
